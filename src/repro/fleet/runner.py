"""The fleet control plane: K shards, one clock, one request stream.

A :class:`FleetRunner` drives many independent serving systems — each a
full proxy + schedulers + instance pools built through the existing
:class:`~repro.core.serving.SystemSpec` seam — from a single simulation
:class:`~repro.sim.Environment`.  The catalog is split across shards by
a :class:`~repro.fleet.partition.CatalogPartitioner`; a single pump
process pulls the global :class:`~repro.workload.stream.RequestStream`
lazily and submits each request to the shard owning its model.

Shards run in streaming mode (``retain_requests=False``): every terminal
request is folded into that shard's
:class:`~repro.fleet.rollup.ShardStats` and dropped, so a 10^5-request
replay peaks at in-flight concurrency, not trace length.  The per-shard
stats merge into a :class:`~repro.fleet.rollup.FleetRollup` — fleet
p50/p99 TTFT/TBT, per-token SLO attainment, and $/token from the
market's hourly GPU prices — exported through ``repro.obs`` alongside
each shard's own metric snapshot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..core.serving import SystemSpec
from ..envkeys import warn_unknown_env_keys
from ..obs import ObsConfig, Observability
from ..policy.placement import MARKET_HOURLY_USD
from ..sim import ContTask, Environment, Event
from .controller import ControllerConfig, FleetController
from .partition import CatalogPartitioner
from .rollup import FleetRollup, ShardStats

__all__ = [
    "FleetConfig",
    "FleetShard",
    "FleetResult",
    "FleetRunner",
    "build_fleet",
]


@dataclass(frozen=True)
class FleetConfig:
    """Shape of a fleet: how many shards, built from which spec."""

    shards: int = 4
    #: Recipe applied to every shard (cluster preset, policies, chaos).
    spec: SystemSpec = SystemSpec()
    #: Consistent-hash ring resolution (vnodes per shard).
    virtual_nodes: int = 64
    salt: str = "aegaeon-fleet"
    #: False (default) drops requests at disposal — the bounded-memory
    #: mode; True keeps per-shard ledgers for post-hoc inspection.
    retain_requests: bool = False
    #: Fleet-level observability (shards carry their own via the spec).
    #: Defaults to metrics-on: the fleet registry is a handful of gauges,
    #: and the rollup export is the control plane's main product.
    obs: ObsConfig = field(default_factory=ObsConfig.metrics_only)
    drain_grace: float = 300.0
    #: None (default) runs the PR-6 static fleet; a
    #: :class:`~repro.fleet.controller.ControllerConfig` arms the live
    #: control loop (rebalance / spillover / scaling hints).
    controller: Optional[ControllerConfig] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    @classmethod
    def from_env(
        cls,
        environ: Optional[Mapping[str, str]] = None,
        **overrides,
    ) -> "FleetConfig":
        """A config shaped by ``REPRO_FLEET_*`` (see ``repro.envkeys``).

        Recognized keys: ``REPRO_FLEET_SHARDS``,
        ``REPRO_FLEET_VIRTUAL_NODES``, ``REPRO_FLEET_CONTROLLER``
        (``static``/``forecast``/``off``), ``REPRO_FLEET_TICK``,
        ``REPRO_FLEET_SPILL_HOPS``.  Explicit ``overrides`` win over the
        environment; unrecognized ``REPRO_*`` keys warn with the nearest
        valid key.
        """
        environ = os.environ if environ is None else environ
        warn_unknown_env_keys(environ)
        kwargs: dict[str, object] = {}
        if "REPRO_FLEET_SHARDS" in environ:
            kwargs["shards"] = int(environ["REPRO_FLEET_SHARDS"])
        if "REPRO_FLEET_VIRTUAL_NODES" in environ:
            kwargs["virtual_nodes"] = int(environ["REPRO_FLEET_VIRTUAL_NODES"])
        policy = environ.get("REPRO_FLEET_CONTROLLER", "").strip().lower()
        if policy and policy != "off":
            controller_kwargs: dict[str, object] = {"policy": policy}
            if "REPRO_FLEET_TICK" in environ:
                controller_kwargs["tick"] = float(environ["REPRO_FLEET_TICK"])
            if "REPRO_FLEET_SPILL_HOPS" in environ:
                controller_kwargs["max_spill_hops"] = int(
                    environ["REPRO_FLEET_SPILL_HOPS"]
                )
            kwargs["controller"] = ControllerConfig(**controller_kwargs)
        kwargs.update(overrides)
        return cls(**kwargs)


@dataclass
class FleetShard:
    """One shard: a full serving system plus its streaming stats."""

    index: int
    name: str
    system: object
    stats: ShardStats
    #: Model specs assigned to this shard for the current run.
    models: tuple = ()


@dataclass
class FleetResult:
    """Everything measured from one fleet run."""

    rollup: FleetRollup
    shard_stats: list[ShardStats]
    submitted: int
    end_time: float
    horizon: float
    gpu_count: int
    #: GPU-hours at simulated time and the market-rate bill for them.
    gpu_hours: float
    cost_usd: float
    #: Fleet-level metric snapshot (repro.obs registry).
    metrics: dict = field(default_factory=dict)
    #: Per-shard repro.obs metric snapshots, index-aligned with shards.
    shard_metrics: list = field(default_factory=list)
    #: ``FleetController.summary()`` when the run had a controller.
    controller: Optional[dict] = None
    #: ``SessionCoordinator.summary()`` when the run mixed agentic
    #: sessions into the stream (per-session conservation rollup).
    sessions: Optional[dict] = None

    @property
    def slo_attainment(self) -> float:
        return self.rollup.slo_attainment

    @property
    def cost_per_token(self) -> Optional[float]:
        return self.rollup.cost_per_token(self.cost_usd)

    def summary(self) -> dict[str, object]:
        """Fleet rollup plus the run's cost accounting."""
        out = self.rollup.summary()
        out.update(
            submitted=self.submitted,
            end_time=self.end_time,
            gpu_count=self.gpu_count,
            gpu_hours=self.gpu_hours,
            cost_usd=self.cost_usd,
            cost_per_token=self.cost_per_token,
        )
        if self.controller is not None:
            out["controller"] = dict(self.controller)
        if self.sessions is not None:
            out["sessions"] = dict(self.sessions)
        return out


@dataclass(frozen=True)
class _ShardCatalog:
    """The trace-shaped view ``prepare()`` expects: models + horizon."""

    models: tuple
    horizon: float


class FleetRunner:
    """Drives K sharded serving systems from one simulation clock."""

    def __init__(self, config: FleetConfig, env: Optional[Environment] = None):
        self.config = config
        self.env = env if env is not None else Environment()
        self.partitioner = CatalogPartitioner(
            config.shards,
            virtual_nodes=config.virtual_nodes,
            salt=config.salt,
        )
        self.obs = Observability(config.obs, clock=lambda: self.env.now)
        self.submitted = 0
        self._all_submitted = False
        #: Extra drain predicates for the run watchdog (sessions).
        self.drain_hooks: list = []
        #: The attached :class:`~repro.core.sessions.SessionCoordinator`,
        #: if any (see :meth:`attach_sessions`).
        self.sessions = None
        self.shards: list[FleetShard] = []
        for index in range(config.shards):
            system = config.spec.build(self.env)
            stats = ShardStats(shard=index, slo=system.slo)
            system.configure_streaming(
                retain_requests=config.retain_requests,
                request_sink=stats.fold,
            )
            shard = FleetShard(
                index=index, name=f"shard-{index}", system=system, stats=stats
            )
            self.shards.append(shard)
            if self.obs.enabled:
                registry = system.registry
                self.obs.metrics.gauge("in_flight", scope=shard.name).set_fn(
                    lambda registry=registry: registry.in_flight
                )
        self.controller: Optional[FleetController] = None
        if config.controller is not None:
            self.controller = FleetController(self, config.controller)
            for shard in self.shards:
                # Re-route each shard's disposition sink through the
                # controller so admission rejections can spill before
                # they are folded as terminal.  Nothing has been
                # submitted yet, so the swap is safe.
                shard.system.configure_streaming(
                    retain_requests=config.retain_requests,
                    request_sink=self.controller.make_sink(shard),
                )
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.gauge("shards", scope="fleet").set(config.shards)
            metrics.gauge("submitted", scope="fleet").set_fn(
                lambda: self.submitted
            )
            metrics.gauge("disposed", scope="fleet").set_fn(self._disposed)

    # -- accounting ----------------------------------------------------------
    def _disposed(self) -> int:
        return sum(shard.system.accounted for shard in self.shards)

    @property
    def gpu_count(self) -> int:
        return sum(shard.system.gpu_count for shard in self.shards)

    def _hourly_usd(self) -> float:
        """The fleet's combined market rate, from each shard's cluster."""
        total = 0.0
        for shard in self.shards:
            cluster = getattr(shard.system, "cluster", None)
            if cluster is not None:
                for gpu in cluster.gpus:
                    total += MARKET_HOURLY_USD.get(gpu.spec.name, 0.0)
            else:
                # No cluster handle (some baselines): price as H800s.
                total += shard.system.gpu_count * MARKET_HOURLY_USD["H800"]
        return total

    def _drained(self) -> bool:
        return all(hook() for hook in self.drain_hooks)

    # -- sessions ------------------------------------------------------------
    def submit_routed(self, trace_request, spec) -> None:
        """Submit one triggered request through the pump's routing rules.

        This is the fleet's session-submission channel: a coordinator's
        triggered stage goes to whichever shard currently owns its model
        (honoring live migrations) and counts toward the pump total so
        the drain watchdog's conservation identity still holds.
        """
        shard = self.shards[self.partitioner.shard_of(trace_request.model)]
        shard.system.submit(trace_request, spec)
        self.submitted += 1
        if self.controller is not None:
            self.controller.note_arrival(trace_request.model)

    def attach_sessions(self, coordinator) -> None:
        """Wire a :class:`~repro.core.sessions.SessionCoordinator` in.

        Triggered stages route through :meth:`submit_routed`; the
        coordinator's settle hook fires on every genuine terminal
        disposition (spills re-submit elsewhere and settle there), and
        its drain predicate keeps the run watchdog alive across
        think-time gaps.  Must precede :meth:`run`.
        """
        if self.submitted:
            raise RuntimeError("attach_sessions must precede run()")
        self.sessions = coordinator
        coordinator.bind(self.submit_routed)
        self.drain_hooks.append(coordinator.drained)
        if self.controller is not None:
            self.controller.settle_hooks.append(coordinator.on_settled)
        else:
            for shard in self.shards:
                inner = shard.system.request_sink

                def sink(request, inner=inner) -> None:
                    if inner is not None:
                        inner(request)
                    coordinator.on_settled(request)

                shard.system.request_sink = sink

    def run(self, stream, until: Optional[float] = None) -> FleetResult:
        """Replay ``stream`` across the fleet to completion or deadline."""
        assignment = self.partitioner.assign(stream.models)
        for shard in self.shards:
            shard.models = tuple(assignment[shard.index])
            # Every shard indexes the whole stream's specs: a routing
            # policy may rewrite a request to a model variant that hashed
            # to a different shard, and the rewrite needs the spec here.
            shard.system.register_models(stream.models)
            shard.system.prepare(
                _ShardCatalog(models=shard.models, horizon=stream.horizon)
            )
        if self.controller is not None:
            self.controller.bind_stream(stream)
            self.controller.start()
        _PumpTask(self.env, self, stream)
        deadline = (
            until if until is not None else stream.horizon + self.config.drain_grace
        )
        self.env.run(until=_WatchdogTask(self.env, self, deadline))
        for shard in self.shards:
            checker = shard.system.invariant_checker
            if checker is not None:
                checker.check_now()
                checker.assert_clean()
        return self._collect(stream.horizon)

    def _collect(self, horizon: float) -> FleetResult:
        shard_stats = [shard.stats for shard in self.shards]
        rollup = FleetRollup(shard_stats)
        gpu_hours = self.gpu_count * self.env.now / 3600.0
        cost_usd = self._hourly_usd() * self.env.now / 3600.0
        if self.obs.enabled:
            summary = rollup.summary()
            metrics = self.obs.metrics
            for key in (
                "slo_attainment",
                "ttft_p50",
                "ttft_p99",
                "tbt_p50",
                "tbt_p99",
            ):
                metrics.gauge(key, scope="fleet").set(float(summary[key]))
        return FleetResult(
            rollup=rollup,
            shard_stats=shard_stats,
            submitted=self.submitted,
            end_time=self.env.now,
            horizon=horizon,
            gpu_count=self.gpu_count,
            gpu_hours=gpu_hours,
            cost_usd=cost_usd,
            metrics=self.obs.metrics.snapshot(),
            shard_metrics=[
                shard.system.obs.metrics.snapshot() for shard in self.shards
            ],
            controller=(
                self.controller.summary() if self.controller is not None else None
            ),
            sessions=(
                self.sessions.summary() if self.sessions is not None else None
            ),
        )


class _PumpTask(ContTask):
    """The streaming pump as a continuation state machine.

    Routes the global stream, shard by model ownership.  The owning
    shard is resolved *after* each arrival wait — a live migration may
    have moved the model while the pump slept — exactly as the generator
    pump did.
    """

    __slots__ = ("_runner", "_iter", "_pending_request", "_shard_of", "_spec_of")

    def __init__(self, env: Environment, runner: FleetRunner, stream) -> None:
        self._runner = runner
        self._iter = iter(stream)
        self._pending_request = None
        self._shard_of = runner.partitioner.shard_of
        self._spec_of = stream.spec_of
        ContTask.__init__(self, env)

    def _start(self, value: object) -> Event:
        return self._loop()

    def _loop(self) -> Event:
        env = self.env
        runner = self._runner
        stream_iter = self._iter
        while True:
            try:
                trace_request = next(stream_iter)
            except StopIteration:
                runner._all_submitted = True
                raise StopIteration(None) from None
            delay = trace_request.arrival - env.now
            if delay > 0:
                self._pending_request = trace_request
                self._send = self._arrived
                return env.timeout(delay)
            self._submit(trace_request)

    def _arrived(self, value: object) -> Event:
        trace_request = self._pending_request
        self._pending_request = None
        self._submit(trace_request)
        return self._loop()

    def _submit(self, trace_request) -> None:
        runner = self._runner
        shard = runner.shards[self._shard_of(trace_request.model)]
        shard.system.submit(trace_request, self._spec_of(trace_request.model))
        runner.submitted += 1
        if runner.controller is not None:
            runner.controller.note_arrival(trace_request.model)


class _WatchdogTask(ContTask):
    """The drain watchdog: polls the conservation identity once a second.

    Terminates (firing as an event, ending ``env.run``) when every
    pumped request plus every controller spill has a terminal
    disposition and all drain hooks report empty — or at the deadline.
    """

    __slots__ = ("_runner", "_deadline")

    def __init__(self, env: Environment, runner: FleetRunner, deadline: float) -> None:
        self._runner = runner
        self._deadline = deadline
        ContTask.__init__(self, env)

    def _start(self, value: object) -> Event:
        self._send = self._tick
        return self._tick(value)

    def _tick(self, value: object) -> Event:
        runner = self._runner
        # Every spill adds one extra terminal disposition beyond the
        # pump's count: the spilling shard folds it as ``spilled``
        # and the target shard disposes the re-submission.
        spills = runner.controller.spills if runner.controller is not None else 0
        if (
            runner._all_submitted
            and runner._disposed() >= runner.submitted + spills
            and runner._drained()
        ):
            raise StopIteration(None)
        if self.env.now >= self._deadline:
            raise StopIteration(None)
        return self.env.timeout(1.0)


def build_fleet(
    config: Optional[FleetConfig] = None,
    env: Optional[Environment] = None,
) -> FleetRunner:
    """Construct a fleet control plane — sibling of
    :func:`~repro.core.serving.build_system`, one level up."""
    return FleetRunner(config if config is not None else FleetConfig(), env=env)
