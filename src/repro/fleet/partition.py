"""Consistent-hash catalog partitioning across fleet shards.

The fleet splits the model catalog — not the request stream — across
shards: every request for a model lands on the shard that owns it, so a
shard's model cache, placement, and autoscaling state stay coherent
without cross-shard coordination on the data path.

:class:`CatalogPartitioner` hashes models onto a ring of virtual nodes
(deterministic ``blake2b``, never Python's per-process-salted ``hash``),
so the mapping is stable across processes and runs.  Virtual nodes keep
the per-shard catalog share near-uniform; :meth:`pin` and
:meth:`rebalance` are the cross-shard overflow hooks — an operator (or a
controller loop) can move hot models off an overloaded shard without
disturbing the rest of the ring.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Mapping, Optional

__all__ = ["CatalogPartitioner"]


def _hash64(key: str) -> int:
    """Deterministic 64-bit hash (stable across processes and runs)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class CatalogPartitioner:
    """Maps model names to shard indices via a consistent-hash ring."""

    def __init__(
        self,
        shard_count: int,
        *,
        virtual_nodes: int = 64,
        salt: str = "aegaeon-fleet",
    ):
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.shard_count = shard_count
        self.virtual_nodes = virtual_nodes
        self.salt = salt
        ring = sorted(
            (_hash64(f"{salt}/{shard}/{vnode}"), shard)
            for shard in range(shard_count)
            for vnode in range(virtual_nodes)
        )
        self._ring_keys = [key for key, _ in ring]
        self._ring_shards = [shard for _, shard in ring]
        #: Explicit overrides (model -> shard), set by pin()/rebalance().
        self.pins: dict[str, int] = {}

    # -- lookup --------------------------------------------------------------
    def shard_of(self, model_name: str) -> int:
        """The shard owning ``model_name`` (pins win over the ring)."""
        pinned = self.pins.get(model_name)
        if pinned is not None:
            return pinned
        point = _hash64(f"{self.salt}:{model_name}")
        index = bisect_right(self._ring_keys, point) % len(self._ring_keys)
        return self._ring_shards[index]

    def assign(self, models: Iterable) -> dict[int, list]:
        """Partition a model catalog: shard index -> its model specs.

        Every shard appears in the result, empty or not, so callers can
        zip it straight against the shard list.
        """
        buckets: dict[int, list] = {shard: [] for shard in range(self.shard_count)}
        for spec in models:
            buckets[self.shard_of(spec.name)].append(spec)
        return buckets

    # -- overflow / rebalance hooks ------------------------------------------
    def pin(self, model_name: str, shard: int) -> None:
        """Force a model onto a shard, overriding the ring."""
        if not 0 <= shard < self.shard_count:
            raise ValueError(
                f"shard {shard} out of range [0, {self.shard_count})"
            )
        self.pins[model_name] = shard

    def unpin(self, model_name: str) -> None:
        """Return a model to its ring-assigned shard."""
        self.pins.pop(model_name, None)

    def rebalance(
        self,
        model_loads: Mapping[str, float],
        *,
        tolerance: float = 0.10,
        max_moves: Optional[int] = None,
    ) -> list[tuple[str, int, int]]:
        """Pin hot models away from overloaded shards.

        ``model_loads`` maps model name to its offered load (e.g. req/s).
        Shards whose total exceeds the fleet mean by more than
        ``tolerance`` shed their hottest models — one at a time, to the
        currently least-loaded shard — until they fit or run out of
        models to move.  Returns the moves applied as
        ``(model, from_shard, to_shard)``; deterministic given the same
        inputs (ties break on model name).
        """
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        loads = [0.0] * self.shard_count
        residents: dict[int, list[tuple[float, str]]] = {
            shard: [] for shard in range(self.shard_count)
        }
        for name in sorted(model_loads):
            shard = self.shard_of(name)
            load = float(model_loads[name])
            loads[shard] += load
            residents[shard].append((load, name))
        mean = sum(loads) / self.shard_count
        ceiling = mean * (1.0 + tolerance)
        moves: list[tuple[str, int, int]] = []
        for shard in sorted(
            range(self.shard_count), key=lambda s: loads[s], reverse=True
        ):
            # Hottest first; name breaks ties so runs are reproducible.
            queue = sorted(residents[shard], key=lambda item: (-item[0], item[1]))
            for load, name in queue:
                if loads[shard] <= ceiling:
                    break
                if max_moves is not None and len(moves) >= max_moves:
                    return moves
                target = min(
                    range(self.shard_count), key=lambda s: (loads[s], s)
                )
                if target == shard or loads[target] + load > loads[shard] - load:
                    continue  # a move that doesn't help; try a cooler model
                self.pins[name] = target
                loads[shard] -= load
                loads[target] += load
                moves.append((name, shard, target))
        return moves
