"""Fleet-scale sharded control plane over the serving systems.

``repro.fleet`` scales the single-pool reproduction out: the model
catalog is consistent-hashed across K shards (each a complete serving
system built from a :class:`~repro.core.serving.SystemSpec`), one pump
process routes a streaming workload by model ownership, and per-shard
streaming stats roll up into fleet-wide latency percentiles, SLO
attainment, and $/token.  An optional :class:`FleetController` closes
the loop live: per-model arrival forecasts drive mid-run catalog
migrations, cross-shard spillover of rejected requests, and per-shard
scaling hints.  See ``DESIGN.md`` ("Fleet architecture" and "The fleet
controller").
"""

from .controller import (
    ControllerConfig,
    FleetController,
    FleetView,
    ModelForecast,
    ShardTelemetry,
    SpillLedger,
)
from .partition import CatalogPartitioner
from .rollup import FleetRollup, LatencyHistogram, ShardStats
from .runner import FleetConfig, FleetResult, FleetRunner, FleetShard, build_fleet

__all__ = [
    "CatalogPartitioner",
    "ControllerConfig",
    "FleetConfig",
    "FleetController",
    "FleetResult",
    "FleetRollup",
    "FleetRunner",
    "FleetShard",
    "FleetView",
    "LatencyHistogram",
    "ModelForecast",
    "ShardStats",
    "ShardTelemetry",
    "SpillLedger",
    "build_fleet",
]
