"""Fleet-scale sharded control plane over the serving systems.

``repro.fleet`` scales the single-pool reproduction out: the model
catalog is consistent-hashed across K shards (each a complete serving
system built from a :class:`~repro.core.serving.SystemSpec`), one pump
process routes a streaming workload by model ownership, and per-shard
streaming stats roll up into fleet-wide latency percentiles, SLO
attainment, and $/token.  See ``DESIGN.md`` ("Fleet architecture").
"""

from .partition import CatalogPartitioner
from .rollup import FleetRollup, LatencyHistogram, ShardStats
from .runner import FleetConfig, FleetResult, FleetRunner, FleetShard, build_fleet

__all__ = [
    "CatalogPartitioner",
    "FleetConfig",
    "FleetResult",
    "FleetRollup",
    "FleetRunner",
    "FleetShard",
    "LatencyHistogram",
    "ShardStats",
    "build_fleet",
]
