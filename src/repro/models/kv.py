"""KV-cache geometry (paper Table 1).

The KV cache for one token is a tensor of shape
``(n_layers, 2, n_kv_heads, head_dim)`` — key and value per layer.  Its
byte size varies 20x across the catalog (128 KB/token for GQA models like
InternLM2.5-7B up to 2560 KB/token for Qwen-72B), which is exactly why
Aegaeon's unified KV cache needs shape-aware slab allocation (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .catalog import ModelSpec

__all__ = ["KvShape", "kv_shape", "kv_bytes_per_token", "kv_block_bytes"]

# vLLM-style paged KV cache: a block holds this many tokens.
DEFAULT_BLOCK_TOKENS = 16


@dataclass(frozen=True, eq=False)
class KvShape:
    """Per-token KV tensor shape, the unit of slab-pool segregation.

    Shapes key the allocator's slab pools and are compared on every
    block free, so equality short-circuits on identity and hashes are
    precomputed (``kv_shape`` interns instances, making the identity
    path the common case).
    """

    n_layers: int
    n_kv_heads: int
    head_dim: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        key = (self.n_layers, self.n_kv_heads, self.head_dim, self.dtype_bytes)
        object.__setattr__(self, "_key", key)
        object.__setattr__(self, "_hash", hash(key))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is KvShape:
            return self._key == other._key
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    @property
    def dims(self) -> tuple[int, int, int, int]:
        """Shape tuple as printed in Table 1: (layers, 2, kv_heads, head_dim)."""
        return (self.n_layers, 2, self.n_kv_heads, self.head_dim)

    @property
    def bytes_per_token(self) -> int:
        """Bytes of KV cache one token occupies across all layers."""
        return (
            self.n_layers * 2 * self.n_kv_heads * self.head_dim * self.dtype_bytes
        )

    def block_bytes(self, block_tokens: int = DEFAULT_BLOCK_TOKENS) -> int:
        """Bytes of one paged-attention block of this shape."""
        return self.bytes_per_token * block_tokens

    def __str__(self) -> str:
        return f"KV{self.dims}"


@lru_cache(maxsize=None)
def _interned_shape(
    n_layers: int, n_kv_heads: int, head_dim: int, dtype_bytes: int
) -> KvShape:
    return KvShape(
        n_layers=n_layers,
        n_kv_heads=n_kv_heads,
        head_dim=head_dim,
        dtype_bytes=dtype_bytes,
    )


def kv_shape(spec: ModelSpec, tp: int = 1) -> KvShape:
    """The per-GPU KV shape for ``spec`` under tensor parallelism ``tp``.

    Equal shapes return the *same* object, so shape comparisons on the
    allocator hot path resolve by identity.
    """
    shard = spec.shard(tp) if tp > 1 else spec
    return _interned_shape(
        shard.n_layers, shard.n_kv_heads, shard.head_dim, shard.dtype_bytes
    )


def kv_bytes_per_token(spec: ModelSpec, tp: int = 1) -> int:
    """Per-GPU KV bytes for one token of ``spec`` at TP degree ``tp``."""
    return kv_shape(spec, tp).bytes_per_token


def kv_block_bytes(
    spec: ModelSpec, tp: int = 1, block_tokens: int = DEFAULT_BLOCK_TOKENS
) -> int:
    """Per-GPU bytes of one KV block."""
    return kv_shape(spec, tp).block_bytes(block_tokens)
