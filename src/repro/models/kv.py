"""KV-cache geometry (paper Table 1).

The KV cache for one token is a tensor of shape
``(n_layers, 2, n_kv_heads, head_dim)`` — key and value per layer.  Its
byte size varies 20x across the catalog (128 KB/token for GQA models like
InternLM2.5-7B up to 2560 KB/token for Qwen-72B), which is exactly why
Aegaeon's unified KV cache needs shape-aware slab allocation (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .catalog import ModelSpec

__all__ = ["KvShape", "kv_shape", "kv_bytes_per_token", "kv_block_bytes"]

# vLLM-style paged KV cache: a block holds this many tokens.
DEFAULT_BLOCK_TOKENS = 16


@dataclass(frozen=True)
class KvShape:
    """Per-token KV tensor shape, the unit of slab-pool segregation."""

    n_layers: int
    n_kv_heads: int
    head_dim: int
    dtype_bytes: int = 2

    @property
    def dims(self) -> tuple[int, int, int, int]:
        """Shape tuple as printed in Table 1: (layers, 2, kv_heads, head_dim)."""
        return (self.n_layers, 2, self.n_kv_heads, self.head_dim)

    @property
    def bytes_per_token(self) -> int:
        """Bytes of KV cache one token occupies across all layers."""
        return (
            self.n_layers * 2 * self.n_kv_heads * self.head_dim * self.dtype_bytes
        )

    def block_bytes(self, block_tokens: int = DEFAULT_BLOCK_TOKENS) -> int:
        """Bytes of one paged-attention block of this shape."""
        return self.bytes_per_token * block_tokens

    def __str__(self) -> str:
        return f"KV{self.dims}"


def kv_shape(spec: ModelSpec, tp: int = 1) -> KvShape:
    """The per-GPU KV shape for ``spec`` under tensor parallelism ``tp``."""
    shard = spec.shard(tp) if tp > 1 else spec
    return KvShape(
        n_layers=shard.n_layers,
        n_kv_heads=shard.n_kv_heads,
        head_dim=shard.head_dim,
        dtype_bytes=shard.dtype_bytes,
    )


def kv_bytes_per_token(spec: ModelSpec, tp: int = 1) -> int:
    """Per-GPU KV bytes for one token of ``spec`` at TP degree ``tp``."""
    return kv_shape(spec, tp).bytes_per_token


def kv_block_bytes(
    spec: ModelSpec, tp: int = 1, block_tokens: int = DEFAULT_BLOCK_TOKENS
) -> int:
    """Per-GPU bytes of one KV block."""
    return kv_shape(spec, tp).block_bytes(block_tokens)
