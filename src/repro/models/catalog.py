"""LLM architecture catalog.

A :class:`ModelSpec` records the handful of architectural hyperparameters
that drive everything the serving system cares about: weight bytes (switch
latency, VRAM footprint), KV-cache shape (slab allocation, Table 1), and
the FLOP/byte counts entering the analytical latency model.

Presets cover the model families named in the paper (Qwen, Llama,
InternLM, Yi) in the 1.8B-72B range used across §7.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "ModelSpec",
    "MODEL_CATALOG",
    "get_model",
    "models_in_range",
    "market_mix",
]


@dataclass(frozen=True)
class ModelSpec:
    """Architecture of one LLM."""

    name: str
    family: str
    params: int  # total parameter count
    n_layers: int
    hidden_size: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    ffn_intermediate: int
    dtype_bytes: int = 2  # FP16/BF16

    def __post_init__(self) -> None:
        if self.params <= 0 or self.n_layers <= 0:
            raise ValueError(f"invalid model spec: {self.name}")
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError(
                f"{self.name}: n_heads ({self.n_heads}) must be a multiple "
                f"of n_kv_heads ({self.n_kv_heads})"
            )

    @property
    def weight_bytes(self) -> int:
        """Bytes of model weights at the spec's precision."""
        return self.params * self.dtype_bytes

    @property
    def params_b(self) -> float:
        """Parameter count in billions (for display)."""
        return self.params / 1e9

    def shard(self, tp: int) -> "ModelSpec":
        """Per-GPU shard of this model under tensor parallelism.

        Attention heads and the FFN are split ``tp`` ways; when the KV
        heads cannot be split further (GQA), they are replicated, which
        matches vLLM's behaviour.
        """
        if tp <= 0 or self.n_heads % tp != 0:
            raise ValueError(f"invalid TP degree {tp} for {self.name}")
        return replace(
            self,
            name=f"{self.name}/tp{tp}",
            params=self.params // tp,
            n_heads=self.n_heads // tp,
            n_kv_heads=max(1, self.n_kv_heads // tp),
            ffn_intermediate=self.ffn_intermediate // tp,
        )

    def __str__(self) -> str:
        return f"{self.name} ({self.params_b:.1f}B)"


def _spec(
    name: str,
    family: str,
    params_b: float,
    layers: int,
    hidden: int,
    heads: int,
    kv_heads: int,
    ffn: int,
    head_dim: int = 128,
) -> ModelSpec:
    return ModelSpec(
        name=name,
        family=family,
        params=int(params_b * 1e9),
        n_layers=layers,
        hidden_size=hidden,
        n_heads=heads,
        n_kv_heads=kv_heads,
        head_dim=head_dim,
        ffn_intermediate=ffn,
    )


# Architectures follow the published model cards.  The four rows of the
# paper's Table 1 are Qwen-7B, InternLM2.5-7B, LLaMA-13B and Qwen-72B.
MODEL_CATALOG: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        _spec("Qwen-1.8B", "Qwen", 1.84, 24, 2048, 16, 16, 5504),
        _spec("Yi-6B", "Yi", 6.06, 32, 4096, 32, 4, 11008),
        _spec("Qwen-7B", "Qwen", 7.72, 32, 4096, 32, 32, 11008),
        _spec("InternLM2.5-7B", "InternLM", 7.74, 32, 4096, 32, 8, 14336),
        _spec("Llama-7B", "Llama", 6.74, 32, 4096, 32, 32, 11008),
        _spec("Yi-9B", "Yi", 8.83, 48, 4096, 32, 4, 11008),
        _spec("Llama-13B", "Llama", 13.02, 40, 5120, 40, 40, 13824),
        _spec("Qwen-14B", "Qwen", 14.17, 40, 5120, 40, 40, 13696),
        _spec("Qwen-32B", "Qwen", 32.51, 64, 5120, 40, 8, 27392),
        _spec("Qwen-72B", "Qwen", 72.71, 80, 8192, 64, 64, 24576),
    ]
}


def get_model(name: str) -> ModelSpec:
    """Look up a preset by name."""
    try:
        return MODEL_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_CATALOG))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


def models_in_range(min_b: float, max_b: float) -> list[ModelSpec]:
    """All presets whose parameter count falls in [min_b, max_b] billions."""
    return [
        spec
        for spec in MODEL_CATALOG.values()
        if min_b <= spec.params_b <= max_b
    ]


def market_mix(count: int, min_b: float = 6.0, max_b: float = 14.5) -> list[ModelSpec]:
    """Build a ``count``-model serving mix by cycling the preset pool.

    The paper's main evaluation serves 6B-14B models; each logical model
    on the market gets a distinct identity (``name#k``) even when it
    shares an architecture with another, because the serving system must
    treat them as separate deployables (separate weights, separate KV).
    """
    pool = models_in_range(min_b, max_b)
    if not pool:
        raise ValueError(f"no presets in range [{min_b}, {max_b}]B")
    mix = []
    for i in range(count):
        base = pool[i % len(pool)]
        mix.append(replace(base, name=f"{base.name}#{i}"))
    return mix
