"""LLM architecture catalog, KV-cache geometry, and latency models."""

from .catalog import MODEL_CATALOG, ModelSpec, get_model, market_mix, models_in_range
from .kv import (
    DEFAULT_BLOCK_TOKENS,
    KvShape,
    kv_block_bytes,
    kv_bytes_per_token,
    kv_shape,
)
from .latency import (
    NAIVE_LOAD_BANDWIDTH,
    PCIE_BETA,
    LatencyModel,
    switch_time,
)

__all__ = [
    "DEFAULT_BLOCK_TOKENS",
    "KvShape",
    "LatencyModel",
    "MODEL_CATALOG",
    "ModelSpec",
    "NAIVE_LOAD_BANDWIDTH",
    "PCIE_BETA",
    "get_model",
    "kv_block_bytes",
    "kv_bytes_per_token",
    "kv_shape",
    "market_mix",
    "models_in_range",
    "switch_time",
]
