"""Analytical latency model (paper Appendix A.2).

The paper predicts token-generation latency with profiled analytical
models (Eqs. 5-6, R-squared > 0.9 on their hardware) and model-switch
latency with Eq. 4.  We implement the same functional forms; the profiled
constants C1..C5 are derived from first principles against the simulated
GPU's sustained compute/bandwidth figures, so the model transfers across
the GPU presets (H800, A10, H20) without per-device profiling.

Functional forms (symbols per Table 1 of the appendix):

* prefill:  ``T = C1 * (4*t*h^2 + 2*t*h*m) + C2 * 3*h*t2 / b + C3``
* decoding: ``T = C4 * (4*h^2 + 2*h*m) + C5 * 3*h*t``
* switch:   ``T = model_bytes / (pcie_bandwidth * beta)``

where ``t`` is the token count in the batch, ``t2`` the squared sum of
input lengths, ``b`` the FlashAttention block size, and for decoding ``t``
is the total context (KV) tokens the step attends over.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from ..hardware.gpu import GpuSpec
from .catalog import ModelSpec
from .kv import kv_bytes_per_token

__all__ = [
    "LatencyModel",
    "switch_time",
    "LATENCY_CACHE_SIZE",
    "PCIE_BETA",
    "NAIVE_LOAD_BANDWIDTH",
]

# Eq. 4's profiled PCIe-efficiency factor: effective load bandwidth is
# `pcie_bandwidth * beta`.  The paper profiles beta = 0.625 (32 GB/s PCIe
# 4.0 -> 20 GB/s sustained for the optimized pipelined loader).
PCIE_BETA = 0.625

# The *unoptimized* vLLM weight-loading path achieves only 2.83 GB/s in
# the paper's microbenchmark (Figure 7, right): loading LLaMA-13B at TP=2
# takes ~4.6 s.
NAIVE_LOAD_BANDWIDTH = 2.83e9

# FlashAttention kernel block size (Table 1 of the appendix).
FLASH_ATTENTION_BLOCK = 128

# Per-model LRU size for memoized prefill/decode predictions.  Steady-state
# decoding revisits the same (batch, context) keys every scheduler round,
# so even a small cache skips nearly all re-derivation of the Eq. 5-6 terms.
LATENCY_CACHE_SIZE = 4096


def switch_time(
    model: ModelSpec,
    gpu: GpuSpec,
    tp: int = 1,
    beta: float = PCIE_BETA,
) -> float:
    """Eq. 4: time to load a model's weights onto its TP group.

    Each GPU in the group loads its shard over its own PCIe link in
    parallel, so the wall time is the per-shard time.
    """
    shard_bytes = model.weight_bytes / tp
    return shard_bytes / (gpu.pcie_bandwidth * beta)


@dataclass
class LatencyModel:
    """Token-generation latency for one (model, GPU, TP) combination."""

    model: ModelSpec
    gpu: GpuSpec
    tp: int = 1
    # Fixed per-step overheads: kernel launch, sampling, detokenization.
    prefill_overhead: float = 0.008
    decode_overhead: float = 0.003

    def __post_init__(self) -> None:
        shard = self.model.shard(self.tp) if self.tp > 1 else self.model
        self._shard = shard
        h = self.model.hidden_size
        m = self.model.ffn_intermediate
        layers = self.model.n_layers
        flops = self.gpu.effective_flops * self.tp
        hbm = self.gpu.effective_hbm_bandwidth * self.tp

        # C1: GEMM time per (4*t*h^2 + 2*t*h*m) MAC count; 2 FLOPs per MAC,
        # n_layers layers.
        self._c1 = 2.0 * layers / flops
        # C2: attention-score time.  The appendix expresses it as
        # 3*h*t2/b; folding the FlashAttention block size back out, the
        # underlying FLOP count is ~8*h*t2 per layer (QK^T plus PV).
        self._c2 = (8.0 * layers * FLASH_ATTENTION_BLOCK) / (3.0 * flops)
        self._c3 = self.prefill_overhead
        # C4: decode weight-streaming time per (4h^2 + 2hm); the whole
        # shard is read from HBM once per step.
        weight_read = shard.weight_bytes / hbm
        self._c4 = weight_read / (4.0 * h * h + 2.0 * h * m)
        # C5: KV-cache read per context token, expressed against 3*h*t.
        kv_read_per_token = kv_bytes_per_token(self.model, self.tp) / (
            self.gpu.effective_hbm_bandwidth
        )
        self._c5 = kv_read_per_token / (3.0 * h)
        # Compute floor for very large decode batches (decode turns
        # compute-bound): 2 FLOPs per parameter per generated token.
        self._decode_flops_per_token = 2.0 * self.model.params / flops
        # Constant-folded coefficients: every per-step term that does not
        # depend on the batch is collapsed to one multiplier, so a
        # prediction is a handful of flops instead of re-deriving the
        # Eq. 5-6 expressions.
        self._prefill_per_token = self._c1 * (4.0 * h * h + 2.0 * h * m)
        self._prefill_per_sq_token = self._c2 * (3.0 * h) / FLASH_ATTENTION_BLOCK
        self._decode_weights_time = self._c4 * (4.0 * h * h + 2.0 * h * m)
        self._decode_per_context_token = self._c5 * 3.0 * h
        # Memoization (true LRU): keyed on the exact batch signature /
        # (batch size, context) pair, so cached and uncached predictions
        # are bit-identical.
        self._prefill_cached = lru_cache(maxsize=LATENCY_CACHE_SIZE)(
            self._prefill_uncached
        )
        self._decode_cached = lru_cache(maxsize=LATENCY_CACHE_SIZE)(
            self._decode_uncached
        )

    # -- constants (exposed for tests and reporting) -----------------------
    @property
    def constants(self) -> dict[str, float]:
        """The fitted constants C1..C5 in the appendix's notation."""
        return {
            "C1": self._c1,
            "C2": self._c2,
            "C3": self._c3,
            "C4": self._c4,
            "C5": self._c5,
        }

    # -- predictions --------------------------------------------------------
    def _prefill_uncached(self, lengths: tuple[int, ...]) -> float:
        if len(lengths) >= 16:
            # Integer sums are exact in int64, so the vectorized reduction
            # produces the same t/t2 (and thus the same float) as the loop.
            arr = np.asarray(lengths, dtype=np.int64)
            t = int(arr.sum())
            t2 = int((arr * arr).sum())
        else:
            t = 0
            t2 = 0
            for length in lengths:
                t += length
                t2 += length * length
        return self._prefill_per_token * t + self._prefill_per_sq_token * t2 + self._c3

    def prefill_time(self, input_lengths: Sequence[int]) -> float:
        """Eq. 5: wall time of one prefill batch."""
        if not input_lengths:
            return 0.0
        return self._prefill_cached(tuple(input_lengths))

    def prefill_time_single(self, input_length: int) -> float:
        """Eq. 5 for a batch of one prompt (the Algorithm 1 common case).

        Identical to ``prefill_time([input_length])`` without building a
        throwaway batch list — schedulers estimate queue loads with this
        in a tight loop.
        """
        return self._prefill_cached((input_length,))

    def _decode_uncached(self, batch_size: int, context_tokens: int) -> float:
        memory = self._decode_weights_time + self._decode_per_context_token * context_tokens
        compute = self._decode_flops_per_token * batch_size
        return (memory if memory >= compute else compute) + self.decode_overhead

    def decode_step_time(self, batch_size: int, context_tokens: int) -> float:
        """Eq. 6: wall time of one decoding step for the whole batch.

        ``context_tokens`` is the total KV length attended over (the sum
        of current sequence lengths across the batch).
        """
        if batch_size <= 0:
            return 0.0
        return self._decode_cached(batch_size, context_tokens)

    # -- vectorized evaluation ----------------------------------------------
    # The batch variants evaluate the same constant-folded closed forms
    # with numpy, element-wise, in float64 — bit-identical to the scalar
    # path (integer inputs are exact in int64, and every operation maps
    # one-to-one onto the scalar expression; no reductions are performed
    # here, so no summation-order drift is possible).  Callers that need
    # a total must accumulate in Python order over ``.tolist()`` to stay
    # byte-identical with the loops they replace.
    def prefill_time_batch(self, input_lengths: Sequence[int]) -> np.ndarray:
        """Eq. 5 for many single-prompt prefills at once.

        Returns the per-prompt wall times (each prompt its own batch of
        one), matching ``prefill_time_single`` element-wise.
        """
        lengths = np.asarray(input_lengths, dtype=np.int64)
        return (
            self._prefill_per_token * lengths
            + self._prefill_per_sq_token * (lengths * lengths)
            + self._c3
        )

    def decode_time_batch(
        self,
        batch_sizes: Sequence[int],
        context_tokens: Sequence[int],
    ) -> np.ndarray:
        """Eq. 6 across a whole decode round.

        ``batch_sizes[i]`` and ``context_tokens[i]`` describe one decode
        step; the result matches ``decode_step_time`` element-wise
        (non-positive batch sizes yield 0.0, as in the scalar guard).
        """
        sizes = np.asarray(batch_sizes, dtype=np.int64)
        ctx = np.asarray(context_tokens, dtype=np.int64)
        memory = self._decode_weights_time + self._decode_per_context_token * ctx
        compute = self._decode_flops_per_token * sizes
        step = np.maximum(memory, compute) + self.decode_overhead
        return np.where(sizes > 0, step, 0.0)

    def estimate_service_time_batch(
        self,
        input_lengths: Sequence[int],
        output_lengths: Sequence[int],
        decode_batch: int = 4,
    ) -> np.ndarray:
        """Vectorized ``estimate_service_time`` over many requests."""
        in_arr = np.asarray(input_lengths, dtype=np.int64)
        out_arr = np.asarray(output_lengths, dtype=np.int64)
        avg_context = in_arr + out_arr / 2.0
        ctx = (avg_context * decode_batch).astype(np.int64)
        sizes = np.full(len(ctx), decode_batch, dtype=np.int64)
        per_step = self.decode_time_batch(sizes, ctx)
        return self.prefill_time_batch(in_arr) + out_arr * per_step

    def cache_info(self) -> dict[str, object]:
        """LRU hit/miss statistics for the memoized predictions."""
        return {
            "prefill": self._prefill_cached.cache_info(),
            "decode": self._decode_cached.cache_info(),
        }

    def switch_time(self, beta: float = PCIE_BETA) -> float:
        """Eq. 4 for this binding's model/GPU/TP."""
        return switch_time(self.model, self.gpu, self.tp, beta)

    def estimate_service_time(
        self, input_length: int, output_length: int, decode_batch: int = 4
    ) -> float:
        """Rough end-to-end service time for one request.

        Used by schedulers needing load estimates (Algorithm 1's queue
        load) and by the active-model analysis (Theorem 3.1's ``T``).
        """
        avg_context = input_length + output_length / 2.0
        per_step = self.decode_step_time(
            decode_batch, int(avg_context * decode_batch)
        )
        return self.prefill_time([input_length]) + output_length * per_step
