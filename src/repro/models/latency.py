"""Analytical latency model (paper Appendix A.2).

The paper predicts token-generation latency with profiled analytical
models (Eqs. 5-6, R-squared > 0.9 on their hardware) and model-switch
latency with Eq. 4.  We implement the same functional forms; the profiled
constants C1..C5 are derived from first principles against the simulated
GPU's sustained compute/bandwidth figures, so the model transfers across
the GPU presets (H800, A10, H20) without per-device profiling.

Functional forms (symbols per Table 1 of the appendix):

* prefill:  ``T = C1 * (4*t*h^2 + 2*t*h*m) + C2 * 3*h*t2 / b + C3``
* decoding: ``T = C4 * (4*h^2 + 2*h*m) + C5 * 3*h*t``
* switch:   ``T = model_bytes / (pcie_bandwidth * beta)``

where ``t`` is the token count in the batch, ``t2`` the squared sum of
input lengths, ``b`` the FlashAttention block size, and for decoding ``t``
is the total context (KV) tokens the step attends over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..hardware.gpu import GpuSpec
from .catalog import ModelSpec
from .kv import kv_bytes_per_token

__all__ = ["LatencyModel", "switch_time", "PCIE_BETA", "NAIVE_LOAD_BANDWIDTH"]

# Eq. 4's profiled PCIe-efficiency factor: effective load bandwidth is
# `pcie_bandwidth * beta`.  The paper profiles beta = 0.625 (32 GB/s PCIe
# 4.0 -> 20 GB/s sustained for the optimized pipelined loader).
PCIE_BETA = 0.625

# The *unoptimized* vLLM weight-loading path achieves only 2.83 GB/s in
# the paper's microbenchmark (Figure 7, right): loading LLaMA-13B at TP=2
# takes ~4.6 s.
NAIVE_LOAD_BANDWIDTH = 2.83e9

# FlashAttention kernel block size (Table 1 of the appendix).
FLASH_ATTENTION_BLOCK = 128


def switch_time(
    model: ModelSpec,
    gpu: GpuSpec,
    tp: int = 1,
    beta: float = PCIE_BETA,
) -> float:
    """Eq. 4: time to load a model's weights onto its TP group.

    Each GPU in the group loads its shard over its own PCIe link in
    parallel, so the wall time is the per-shard time.
    """
    shard_bytes = model.weight_bytes / tp
    return shard_bytes / (gpu.pcie_bandwidth * beta)


@dataclass
class LatencyModel:
    """Token-generation latency for one (model, GPU, TP) combination."""

    model: ModelSpec
    gpu: GpuSpec
    tp: int = 1
    # Fixed per-step overheads: kernel launch, sampling, detokenization.
    prefill_overhead: float = 0.008
    decode_overhead: float = 0.003

    def __post_init__(self) -> None:
        shard = self.model.shard(self.tp) if self.tp > 1 else self.model
        self._shard = shard
        h = self.model.hidden_size
        m = self.model.ffn_intermediate
        layers = self.model.n_layers
        flops = self.gpu.effective_flops * self.tp
        hbm = self.gpu.effective_hbm_bandwidth * self.tp

        # C1: GEMM time per (4*t*h^2 + 2*t*h*m) MAC count; 2 FLOPs per MAC,
        # n_layers layers.
        self._c1 = 2.0 * layers / flops
        # C2: attention-score time.  The appendix expresses it as
        # 3*h*t2/b; folding the FlashAttention block size back out, the
        # underlying FLOP count is ~8*h*t2 per layer (QK^T plus PV).
        self._c2 = (8.0 * layers * FLASH_ATTENTION_BLOCK) / (3.0 * flops)
        self._c3 = self.prefill_overhead
        # C4: decode weight-streaming time per (4h^2 + 2hm); the whole
        # shard is read from HBM once per step.
        weight_read = shard.weight_bytes / hbm
        self._c4 = weight_read / (4.0 * h * h + 2.0 * h * m)
        # C5: KV-cache read per context token, expressed against 3*h*t.
        kv_read_per_token = kv_bytes_per_token(self.model, self.tp) / (
            self.gpu.effective_hbm_bandwidth
        )
        self._c5 = kv_read_per_token / (3.0 * h)
        # Compute floor for very large decode batches (decode turns
        # compute-bound): 2 FLOPs per parameter per generated token.
        self._decode_flops_per_token = 2.0 * self.model.params / flops

    # -- constants (exposed for tests and reporting) -----------------------
    @property
    def constants(self) -> dict[str, float]:
        """The fitted constants C1..C5 in the appendix's notation."""
        return {
            "C1": self._c1,
            "C2": self._c2,
            "C3": self._c3,
            "C4": self._c4,
            "C5": self._c5,
        }

    # -- predictions --------------------------------------------------------
    def prefill_time(self, input_lengths: Sequence[int]) -> float:
        """Eq. 5: wall time of one prefill batch."""
        if not input_lengths:
            return 0.0
        h = self.model.hidden_size
        m = self.model.ffn_intermediate
        t = sum(input_lengths)
        t2 = sum(length * length for length in input_lengths)
        linear = self._c1 * (4.0 * t * h * h + 2.0 * t * h * m)
        attention = self._c2 * (3.0 * h * t2) / FLASH_ATTENTION_BLOCK
        return linear + attention + self._c3

    def decode_step_time(self, batch_size: int, context_tokens: int) -> float:
        """Eq. 6: wall time of one decoding step for the whole batch.

        ``context_tokens`` is the total KV length attended over (the sum
        of current sequence lengths across the batch).
        """
        if batch_size <= 0:
            return 0.0
        h = self.model.hidden_size
        m = self.model.ffn_intermediate
        weights = self._c4 * (4.0 * h * h + 2.0 * h * m)
        kv = self._c5 * 3.0 * h * context_tokens
        compute = self._decode_flops_per_token * batch_size
        return max(weights + kv, compute) + self.decode_overhead

    def switch_time(self, beta: float = PCIE_BETA) -> float:
        """Eq. 4 for this binding's model/GPU/TP."""
        return switch_time(self.model, self.gpu, self.tp, beta)

    def estimate_service_time(
        self, input_length: int, output_length: int, decode_batch: int = 4
    ) -> float:
        """Rough end-to-end service time for one request.

        Used by schedulers needing load estimates (Algorithm 1's queue
        load) and by the active-model analysis (Theorem 3.1's ``T``).
        """
        avg_context = input_length + output_length / 2.0
        per_step = self.decode_step_time(
            decode_batch, int(avg_context * decode_batch)
        )
        return self.prefill_time([input_length]) + output_length * per_step
