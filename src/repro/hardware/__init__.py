"""Simulated hardware substrate: GPUs, interconnects, nodes, clusters."""

from .cluster import Cluster
from .gpu import A10, A100, GPU_PRESETS, H20, H800, Gpu, GpuSpec
from .interconnect import DuplexLink, Link, nvlink, pcie_pair
from .node import Node

__all__ = [
    "A10",
    "A100",
    "Cluster",
    "DuplexLink",
    "GPU_PRESETS",
    "Gpu",
    "GpuSpec",
    "H20",
    "H800",
    "Link",
    "Node",
    "nvlink",
    "pcie_pair",
]
