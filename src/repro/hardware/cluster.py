"""Cluster model: a set of nodes plus convenience constructors.

The paper's main testbed is two nodes of eight H800s each; §7.4 uses a
single 4xA10 node and an 8xH800 node.  ``Cluster.testbed()`` and friends
build these shapes directly.
"""

from __future__ import annotations

from typing import Iterator

from ..sim import Environment
from .gpu import A10, H800, Gpu, GpuSpec
from .node import Node

__all__ = ["Cluster"]

GiB = 1024**3


class Cluster:
    """A collection of nodes managed as one GPU pool."""

    def __init__(self, env: Environment, nodes: list[Node]):
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        self.env = env
        self.nodes = nodes

    # -- constructors ------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        env: Environment,
        gpu_spec: GpuSpec,
        node_count: int,
        gpus_per_node: int,
        dram_bytes: int = 2048 * GiB,
    ) -> "Cluster":
        """Build ``node_count`` identical nodes."""
        nodes = [
            Node(env, gpu_spec, gpus_per_node, dram_bytes=dram_bytes, index=i)
            for i in range(node_count)
        ]
        return cls(env, nodes)

    @classmethod
    def testbed(cls, env: Environment) -> "Cluster":
        """The paper's main testbed: 2 nodes x 8 H800, 2 TB DRAM each."""
        return cls.homogeneous(env, H800, node_count=2, gpus_per_node=8)

    @classmethod
    def a10_node(cls, env: Environment) -> "Cluster":
        """The §7.4 low-end setup: one node with 4 A10 GPUs."""
        return cls.homogeneous(
            env, A10, node_count=1, gpus_per_node=4, dram_bytes=512 * GiB
        )

    @classmethod
    def h800_node(cls, env: Environment) -> "Cluster":
        """The §7.4 large-model setup: one node with 8 H800 GPUs."""
        return cls.homogeneous(env, H800, node_count=1, gpus_per_node=8)

    # -- access --------------------------------------------------------------
    @property
    def gpus(self) -> list[Gpu]:
        """All GPUs across all nodes, in node order."""
        return [gpu for node in self.nodes for gpu in node.gpus]

    def __len__(self) -> int:
        return len(self.gpus)

    def __iter__(self) -> Iterator[Gpu]:
        return iter(self.gpus)

    def node_of(self, gpu: Gpu) -> Node:
        """The node that hosts ``gpu``."""
        return self.nodes[gpu.node_index]

    def __repr__(self) -> str:
        return f"<Cluster {len(self.nodes)} nodes, {len(self.gpus)} GPUs>"
