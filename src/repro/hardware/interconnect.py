"""Interconnect models: PCIe host links and NVLink peer links.

Each :class:`Link` is a unidirectional DMA channel.  Transfers on one
channel serialize (matching how a staged ``cudaMemcpyAsync`` pipeline
behaves on a single copy engine); the two directions of a PCIe link are
independent channels, so swap-in and swap-out genuinely overlap — the
property Aegaeon's fine-grained KV synchronization (§5.3) exploits.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim import Environment, Resource

__all__ = ["Link", "DuplexLink", "pcie_pair", "nvlink"]


class Link:
    """A unidirectional transfer channel with fixed bandwidth.

    Transfers are FIFO: a transfer holds the channel for
    ``nbytes / bandwidth`` (plus fixed per-transfer latency).  Chunked
    pipelines issue many small transfers; their serialization on the
    channel reproduces copy-engine behaviour.
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        name: str = "link",
        latency: float = 5e-6,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.name = name
        self.latency = latency
        self._channel = Resource(env, capacity=1)
        self.bytes_moved = 0
        self.busy_time = 0.0

    def transfer_time(self, nbytes: int) -> float:
        """Duration of a single transfer, excluding queueing."""
        return self.latency + nbytes / self.bandwidth

    def throttle(self, factor: float) -> None:
        """Divide bandwidth by ``factor`` (a congested/downtrained link).

        Only transfers that *start* while throttled are slowed —
        in-flight transfers sampled the old bandwidth, mirroring how a
        DMA burst already issued is unaffected by later link state.
        Overlapping throttles compose multiplicatively; pair each call
        with one :meth:`restore` of the same factor.
        """
        if factor <= 1.0:
            raise ValueError("throttle factor must exceed 1.0")
        self.bandwidth /= factor

    def restore(self, factor: float) -> None:
        """Undo one :meth:`throttle` of the same ``factor``."""
        if factor <= 1.0:
            raise ValueError("restore factor must exceed 1.0")
        self.bandwidth *= factor

    def transfer(self, nbytes: int) -> Generator:
        """Process: move ``nbytes`` across the link (queues if busy)."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        channel = self._channel
        users = channel.users
        if not users and not channel.queue:
            # Uncontended fast path: the grant is immediate, so hold the
            # channel with a plain token instead of building a Request
            # event nothing will ever wait on.  Contending transfers see
            # the slot taken and queue through the normal path.
            token = object()
            users.append(token)
            try:
                duration = self.transfer_time(nbytes)
                yield self.env.timeout(duration)
                self.bytes_moved += nbytes
                self.busy_time += duration
            finally:
                users.remove(token)
                channel._grant_next()
            return
        with channel.request() as claim:
            yield claim
            duration = self.transfer_time(nbytes)
            yield self.env.timeout(duration)
            self.bytes_moved += nbytes
            self.busy_time += duration

    @property
    def queue_depth(self) -> int:
        """Transfers currently waiting for the channel."""
        return len(self._channel.queue)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of wall time the channel was busy."""
        elapsed = self.env.now if elapsed is None else elapsed
        return 0.0 if elapsed <= 0 else min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.bandwidth / 1e9:.1f} GB/s>"


class DuplexLink:
    """A pair of independent channels: host-to-device and device-to-host."""

    def __init__(self, env: Environment, bandwidth: float, name: str = "pcie"):
        self.h2d = Link(env, bandwidth, name=f"{name}.h2d")
        self.d2h = Link(env, bandwidth, name=f"{name}.d2h")

    @property
    def bandwidth(self) -> float:
        """Per-direction bandwidth in bytes/s."""
        return self.h2d.bandwidth


def pcie_pair(env: Environment, bandwidth: float, name: str = "pcie") -> DuplexLink:
    """Build the host link for one GPU (both directions)."""
    return DuplexLink(env, bandwidth, name=name)


def nvlink(env: Environment, bandwidth: float = 400e9, name: str = "nvlink") -> Link:
    """Build a peer-to-peer NVLink channel (used for TP collectives)."""
    return Link(env, bandwidth, name=name, latency=2e-6)
