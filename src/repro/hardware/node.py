"""Physical node model: GPUs + host DRAM + host links.

Mirrors the paper's testbed shape — a node carries several GPUs, a large
DDR5 DRAM pool (host model cache + unified CPU KV cache live there), and
one PCIe link per GPU.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Environment
from .gpu import Gpu, GpuSpec
from .interconnect import DuplexLink, pcie_pair

__all__ = ["Node"]

GiB = 1024**3


class Node:
    """One physical server with GPUs, DRAM, and per-GPU PCIe links."""

    def __init__(
        self,
        env: Environment,
        gpu_spec: GpuSpec,
        gpu_count: int,
        dram_bytes: int = 2048 * GiB,
        index: int = 0,
    ):
        if gpu_count <= 0:
            raise ValueError("a node needs at least one GPU")
        self.env = env
        self.index = index
        self.dram_bytes = dram_bytes
        self.dram_used = 0
        self.gpus: list[Gpu] = [
            Gpu(spec=gpu_spec, index=i, node_index=index) for i in range(gpu_count)
        ]
        self.links: dict[int, DuplexLink] = {
            gpu.index: pcie_pair(env, gpu_spec.pcie_bandwidth, name=f"{gpu.key}.pcie")
            for gpu in self.gpus
        }

    def link(self, gpu: Gpu) -> DuplexLink:
        """The PCIe link attached to ``gpu``."""
        return self.links[gpu.index]

    @property
    def dram_free(self) -> int:
        """Unclaimed host memory in bytes."""
        return self.dram_bytes - self.dram_used

    def claim_dram(self, nbytes: int) -> None:
        """Claim host memory for a cache region (model cache, KV pool)."""
        if nbytes > self.dram_free:
            raise MemoryError(
                f"node{self.index}: requested {nbytes} bytes of DRAM, "
                f"only {self.dram_free} free"
            )
        self.dram_used += nbytes

    def release_dram(self, nbytes: int) -> None:
        """Release previously claimed host memory."""
        if nbytes > self.dram_used:
            raise ValueError("release exceeds claimed DRAM")
        self.dram_used -= nbytes

    def gpu_by_key(self, key: str) -> Optional[Gpu]:
        """Find a GPU on this node by its cluster-wide key."""
        for gpu in self.gpus:
            if gpu.key == key:
                return gpu
        return None

    def __repr__(self) -> str:
        spec = self.gpus[0].spec
        return (
            f"<Node {self.index}: {len(self.gpus)}x{spec.name}, "
            f"{self.dram_bytes / GiB:.0f} GB DRAM>"
        )
