"""GPU device models.

A :class:`GpuSpec` captures the handful of hardware parameters that the
paper's analytical latency model (Appendix A.2) and the auto-scaling cost
model (§5) actually depend on: peak FP16 compute, HBM bandwidth, VRAM
capacity, and host-link (PCIe) bandwidth.  Presets cover the devices used
in the paper's evaluation (H800, A10, H20) plus A100 for reference.

A :class:`Gpu` is a *simulated device instance*: a spec plus mutable VRAM
occupancy state, owned by a :class:`~repro.hardware.node.Node`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GpuSpec", "Gpu", "H800", "H20", "A100", "A10", "GPU_PRESETS"]

GiB = 1024**3


@dataclass(frozen=True)
class GpuSpec:
    """Static hardware parameters of one GPU model."""

    name: str
    vram_bytes: int
    fp16_tflops: float  # dense FP16/BF16 peak, TFLOP/s
    hbm_bandwidth: float  # bytes/s
    pcie_bandwidth: float  # bytes/s, per direction (host link)
    # Achievable fractions of peak, folded into the latency model's
    # profiled constants (C1..C5 in Appendix A.2).
    compute_efficiency: float = 0.45
    memory_efficiency: float = 0.65

    @property
    def effective_flops(self) -> float:
        """Sustained FLOP/s for large GEMMs (prefill)."""
        return self.fp16_tflops * 1e12 * self.compute_efficiency

    @property
    def effective_hbm_bandwidth(self) -> float:
        """Sustained bytes/s for streaming weight reads (decoding)."""
        return self.hbm_bandwidth * self.memory_efficiency

    def __str__(self) -> str:
        return f"{self.name} ({self.vram_bytes / GiB:.0f} GB)"


# Presets.  PCIe figures follow the paper's own arithmetic, which assumes
# PCIe 4.0 x16 = 32 GB/s for the H800 testbed.
H800 = GpuSpec(
    name="H800",
    vram_bytes=80 * GiB,
    fp16_tflops=989.0,
    hbm_bandwidth=3.35e12,
    pcie_bandwidth=32e9,
)

H20 = GpuSpec(
    name="H20",
    vram_bytes=96 * GiB,
    fp16_tflops=148.0,
    hbm_bandwidth=4.0e12,
    pcie_bandwidth=64e9,
)

A100 = GpuSpec(
    name="A100",
    vram_bytes=80 * GiB,
    fp16_tflops=312.0,
    hbm_bandwidth=2.0e12,
    pcie_bandwidth=32e9,
)

A10 = GpuSpec(
    name="A10",
    vram_bytes=24 * GiB,
    fp16_tflops=125.0,
    hbm_bandwidth=600e9,
    pcie_bandwidth=32e9,
)

GPU_PRESETS: dict[str, GpuSpec] = {
    spec.name: spec for spec in (H800, H20, A100, A10)
}


@dataclass
class Gpu:
    """One simulated GPU device.

    Tracks coarse VRAM occupancy (fine-grained allocation lives in
    :mod:`repro.memory`); the ``reserved_bytes`` counter is what the
    placement optimizers (e.g. MuxServe's) consult.
    """

    spec: GpuSpec
    index: int = 0
    node_index: int = 0
    reserved_bytes: int = 0
    labels: dict[str, str] = field(default_factory=dict)
    # Cleared when chaos takes the device offline; schedulers and the
    # invariant checker treat an unhealthy GPU's instance as dead.
    healthy: bool = True

    @property
    def free_bytes(self) -> int:
        """VRAM not yet reserved."""
        return self.spec.vram_bytes - self.reserved_bytes

    def reserve(self, nbytes: int) -> None:
        """Reserve ``nbytes`` of VRAM; raises ``MemoryError`` if short."""
        if nbytes > self.free_bytes:
            raise MemoryError(
                f"GPU {self.key}: requested {nbytes} bytes, "
                f"only {self.free_bytes} free"
            )
        self.reserved_bytes += nbytes

    def unreserve(self, nbytes: int) -> None:
        """Return ``nbytes`` of VRAM."""
        if nbytes > self.reserved_bytes:
            raise ValueError("unreserve exceeds reservation")
        self.reserved_bytes -= nbytes

    @property
    def key(self) -> str:
        """Stable identifier, unique within a cluster."""
        return f"node{self.node_index}.gpu{self.index}"

    def __str__(self) -> str:
        return f"{self.key}[{self.spec.name}]"
