"""Active-model analysis (§3.1, Theorem 3.1, Figure 4).

The number of *active* models — models with at least one request in
service — bounds what request-level auto-scaling can achieve: it must
reserve one instance per active model.  Theorem 3.1 gives its
expectation under per-model Poisson arrivals:

    E[m] = M * (1 - exp(-lambda * T))

With the paper's production fit (lambda = 0.037, T = 16.79 s) and
M = 100, E[m] = 46.55 — i.e. fewer than 3 models per GPU even with
perfect request-level scaling.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "expected_active_models",
    "simulate_active_models",
    "models_per_gpu_bound",
]


def expected_active_models(model_count: int, rate: float, service_time: float) -> float:
    """Theorem 3.1: E[m] = M * (1 - e^(-lambda*T))."""
    if model_count < 0 or rate < 0 or service_time < 0:
        raise ValueError("arguments must be non-negative")
    return model_count * (1.0 - math.exp(-rate * service_time))


def simulate_active_models(
    model_count: int,
    rate: float,
    service_time: float,
    horizon: float,
    rng: np.random.Generator,
    sample_interval: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo counterpart of Theorem 3.1 (Figure 4).

    Each model receives Poisson arrivals; a request occupies its model
    for ``service_time`` seconds (an M/D/inf queue per model, matching
    the theorem's fixed-T assumption).  Returns (sample times, active
    model count at each sample).
    """
    samples = np.arange(0.0, horizon, sample_interval)
    active = np.zeros(samples.size, dtype=int)
    for _ in range(model_count):
        count = rng.poisson(rate * horizon)
        arrivals = np.sort(rng.uniform(0.0, horizon, size=count))
        if arrivals.size == 0:
            continue
        departures = arrivals + service_time
        # Model is active at t if any request has arrival <= t < departure.
        started = np.searchsorted(arrivals, samples, side="right")
        finished = np.searchsorted(np.sort(departures), samples, side="right")
        active += (started - finished) > 0
    return samples, active


def models_per_gpu_bound(model_count: int, rate: float, service_time: float) -> float:
    """Pooling bound for request-level scaling: M / E[m] models per GPU."""
    expected = expected_active_models(model_count, rate, service_time)
    if expected <= 0:
        return float("inf")
    return model_count / expected
