"""Capacity planning: size an Aegaeon pool for a workload.

The deployment question behind §7.5 — "how many GPUs does this set of
models actually need?" — asked programmatically: sweep candidate pool
shapes from small to large and return the first that meets the SLO
attainment threshold, alongside the dedicated-GPU baseline for the
savings figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.server import AegaeonConfig, AegaeonServer
from ..core.slo import DEFAULT_SLO, SloSpec
from ..engine.engine import EngineConfig
from ..hardware.cluster import Cluster
from ..hardware.gpu import GpuSpec
from ..sim import Environment
from ..workload.trace import Trace
from .metrics import ServingResult

__all__ = ["PoolPlan", "plan_pool", "DEFAULT_CANDIDATES"]

# Candidate (prefill, decode) splits, smallest first.  The prefill:decode
# ratio tracks the paper's 6:10 testbed split.
DEFAULT_CANDIDATES: tuple[tuple[int, int], ...] = (
    (1, 1),
    (1, 2),
    (1, 3),
    (2, 3),
    (2, 4),
    (2, 6),
    (3, 6),
    (4, 8),
    (6, 10),
)


@dataclass(frozen=True)
class PoolPlan:
    """Outcome of a capacity-planning sweep."""

    prefill_instances: int
    decode_instances: int
    tp: int
    attainment: float
    result: ServingResult

    @property
    def gpus(self) -> int:
        return (self.prefill_instances + self.decode_instances) * self.tp

    def saving_versus_dedicated(self, model_count: int) -> float:
        """GPU saving against one dedicated TP group per model."""
        dedicated = model_count * self.tp
        return 1.0 - self.gpus / dedicated

    def __str__(self) -> str:
        return (
            f"{self.prefill_instances}P+{self.decode_instances}D "
            f"(TP={self.tp}, {self.gpus} GPUs, {self.attainment:.1%} SLO)"
        )


def plan_pool(
    trace: Trace,
    gpu_spec: GpuSpec,
    slo: SloSpec = DEFAULT_SLO,
    threshold: float = 0.90,
    candidates: Sequence[tuple[int, int]] = DEFAULT_CANDIDATES,
    engine: Optional[EngineConfig] = None,
) -> Optional[PoolPlan]:
    """Smallest candidate pool meeting ``threshold`` attainment on ``trace``.

    Each candidate is evaluated on a fresh simulation (same trace, same
    seed), smallest GPU count first.  Returns None if no candidate
    qualifies.
    """
    engine = engine if engine is not None else EngineConfig()
    ordered = sorted(candidates, key=lambda pd: pd[0] + pd[1])
    for prefill, decode in ordered:
        gpus_needed = (prefill + decode) * engine.tp
        env = Environment()
        cluster = Cluster.homogeneous(
            env, gpu_spec, node_count=1, gpus_per_node=gpus_needed
        )
        server = AegaeonServer(
            env,
            cluster,
            AegaeonConfig(
                prefill_instances=prefill,
                decode_instances=decode,
                engine=engine,
                slo=slo,
            ),
        )
        result = server.serve(trace)
        attainment = result.slo_attainment()
        if attainment >= threshold:
            return PoolPlan(
                prefill_instances=prefill,
                decode_instances=decode,
                tp=engine.tp,
                attainment=attainment,
                result=result,
            )
    return None
