"""Plain-text reporting helpers for the benchmark harness.

Every bench prints the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics import ServingResult

__all__ = [
    "format_table",
    "format_cdf",
    "format_series",
    "format_run_summary",
    "percentiles",
]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def percentiles(
    values: np.ndarray | Sequence[float], points: Sequence[float] = (50, 90, 99)
) -> dict[str, float]:
    """Named percentiles of a sample."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return {f"p{p:g}": float("nan") for p in points}
    return {f"p{p:g}": float(np.percentile(array, p)) for p in points}


def format_cdf(values: np.ndarray | Sequence[float], label: str, bins: int = 10) -> str:
    """Summarize a distribution as CDF checkpoints (for figure CDFs)."""
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        return f"{label}: (empty)"
    quantiles = np.linspace(0.0, 1.0, bins + 1)[1:]
    marks = ", ".join(
        f"P{int(q * 100)}={np.quantile(array, q):.3f}" for q in quantiles
    )
    return f"{label}: n={array.size}, {marks}"


def format_series(
    xs: Sequence[object], ys: Sequence[float], x_label: str, y_label: str
) -> str:
    """Render an (x, y) series as the rows behind a line plot."""
    rows = [(x, y) for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows)


def format_run_summary(result: "ServingResult") -> str:
    """Human-readable end-of-run summary of one serving run.

    Combines the headline serving numbers with the observability
    attachments when the run recorded them: the collected metric
    snapshot and, under full tracing, the per-stage model-switch
    breakdown rebuilt from the trace.
    """
    lines = [f"=== {result.label or 'run'} ==="]
    lines.append(
        format_table(
            ["metric", "value"],
            sorted(result.summary().items()),
        )
    )
    if result.metrics:
        rows = []
        for key, value in sorted(result.metrics.items()):
            if isinstance(value, dict):  # histogram summary
                rendered = ", ".join(
                    f"{stat}={stat_value:g}" for stat, stat_value in value.items()
                )
                rows.append((key, rendered))
            else:
                rows.append((key, value))
        lines.append("")
        lines.append(format_table(["collected metric", "value"], rows))
    if result.obs is not None and result.obs.tracer.enabled:
        from ..obs import format_switch_breakdown

        lines.append("")
        lines.append(format_switch_breakdown(result.obs.tracer))
    return "\n".join(lines)
