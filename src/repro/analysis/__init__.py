"""Metrics, analytical models, and reporting."""

from .active_models import (
    expected_active_models,
    models_per_gpu_bound,
    simulate_active_models,
)
from .metrics import LatencyBreakdown, ServingResult, goodput_frontier
from .planner import DEFAULT_CANDIDATES, PoolPlan, plan_pool
from .reporting import (
    format_cdf,
    format_run_summary,
    format_series,
    format_table,
    percentiles,
)

__all__ = [
    "DEFAULT_CANDIDATES",
    "LatencyBreakdown",
    "PoolPlan",
    "ServingResult",
    "expected_active_models",
    "format_cdf",
    "format_run_summary",
    "format_series",
    "format_table",
    "goodput_frontier",
    "models_per_gpu_bound",
    "plan_pool",
    "percentiles",
    "simulate_active_models",
]
