"""Observability level configuration.

One :class:`ObsConfig` travels with every system config and selects how
much the run records: nothing (the default — near-zero overhead),
metrics only, or metrics plus a full span/event trace suitable for the
Chrome ``trace_event`` timeline viewer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = ["ObsConfig"]

# Environment variable selecting the observability level for runs built
# through ``RunSettings.from_env()`` (benchmarks, CI smoke runs).
OBS_ENV_VAR = "REPRO_OBS"

_LEVELS = {
    "": (False, False),
    "off": (False, False),
    "metrics": (True, False),
    "trace": (True, True),
    "full": (True, True),
}


@dataclass(frozen=True)
class ObsConfig:
    """What a run records: nothing, metrics, or metrics + full trace."""

    metrics: bool = False
    full_trace: bool = False

    @property
    def enabled(self) -> bool:
        """True if any instrumentation is recording."""
        return self.metrics or self.full_trace

    # -- presets -----------------------------------------------------------
    @classmethod
    def off(cls) -> "ObsConfig":
        """No recording; instrumentation costs a no-op call at most."""
        return cls()

    @classmethod
    def metrics_only(cls) -> "ObsConfig":
        """Counters/gauges/histograms, but no per-event trace records."""
        return cls(metrics=True)

    @classmethod
    def full(cls) -> "ObsConfig":
        """Metrics plus the full span/event timeline."""
        return cls(metrics=True, full_trace=True)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "ObsConfig":
        """Resolve the level from ``REPRO_OBS`` (off | metrics | trace)."""
        environ = os.environ if environ is None else environ
        level = environ.get(OBS_ENV_VAR, "").strip().lower()
        if level not in _LEVELS:
            raise ValueError(
                f"{OBS_ENV_VAR}={level!r} not one of {sorted(k for k in _LEVELS if k)}"
            )
        metrics, full_trace = _LEVELS[level]
        return cls(metrics=metrics, full_trace=full_trace)
