"""Exporters: Chrome timeline, CSV/JSON metric dumps, switch breakdowns.

The Chrome exporter emits the ``trace_event`` JSON format loadable in
``chrome://tracing`` / Perfetto: each tracer track becomes a named
thread, spans become complete (``X``) events, instants become ``i``
events, and counter samples become ``C`` events.  Simulated seconds map
to trace microseconds.

``switch_breakdown`` rebuilds the Figure 8/15-style per-stage scaling
breakdown directly from a trace dump, so figure tables no longer scrape
engine internals.
"""

from __future__ import annotations

import json
from typing import IO, Optional, Union

from .metrics import MetricsRegistry
from .tracer import SpanRecord, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "metrics_to_json",
    "metrics_to_csv",
    "switch_breakdown",
    "format_switch_breakdown",
]

_PID = 1
_SECONDS_TO_US = 1e6

# Span categories emitted by the engine's scaling state machine.
SWITCH_CAT = "switch"
SWITCH_STAGE_CAT = "switch.stage"


def _track_ids(tracks: list[str]) -> dict[str, int]:
    return {track: tid for tid, track in enumerate(sorted(set(tracks)), start=1)}


def chrome_trace(tracer: Tracer) -> dict:
    """Render a tracer's records as a Chrome ``trace_event`` document."""
    tracks = (
        [span.track for span in tracer.spans]
        + [instant.track for instant in tracer.instants]
        + [sample.track for sample in tracer.counters]
    )
    tids = _track_ids(tracks)
    events: list[dict] = []
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    for span in tracer.spans:
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": tids[span.track],
                "name": span.name,
                "cat": span.cat or "span",
                "ts": span.start * _SECONDS_TO_US,
                "dur": span.duration * _SECONDS_TO_US,
                "args": dict(span.args),
            }
        )
    for instant in tracer.instants:
        events.append(
            {
                "ph": "i",
                "pid": _PID,
                "tid": tids[instant.track],
                "name": instant.name,
                "cat": instant.cat or "instant",
                "ts": instant.ts * _SECONDS_TO_US,
                "s": "t",
                "args": dict(instant.args),
            }
        )
    for sample in tracer.counters:
        events.append(
            {
                "ph": "C",
                "pid": _PID,
                "tid": tids[sample.track],
                "name": sample.name,
                "ts": sample.ts * _SECONDS_TO_US,
                "args": {"value": sample.value},
            }
        )
    # Stable render order for diffing: by timestamp, metadata first.
    events.sort(key=lambda event: (event.get("ts", -1.0), event["tid"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, destination: Union[str, IO[str]]) -> None:
    """Write the Chrome timeline JSON to a path or open text file."""
    document = chrome_trace(tracer)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(document, handle)
    else:
        json.dump(document, destination)


# -- metrics dumps -----------------------------------------------------------
def metrics_to_json(registry: MetricsRegistry) -> dict[str, object]:
    """The registry snapshot as a JSON-serializable mapping."""
    return registry.snapshot()


def metrics_to_csv(registry: MetricsRegistry) -> str:
    """The registry snapshot as ``metric,value`` CSV rows.

    Histogram summaries flatten to dotted keys (``name.p99``).
    """
    lines = ["metric,value"]
    for key, value in registry.snapshot().items():
        if isinstance(value, dict):
            for stat, stat_value in value.items():
                lines.append(f"{key}.{stat},{stat_value:g}")
        else:
            lines.append(f"{key},{value:g}")
    return "\n".join(lines) + "\n"


# -- figure-style breakdowns -------------------------------------------------
def switch_breakdown(
    tracer: Tracer, track: Optional[str] = None
) -> dict[str, float]:
    """Total seconds per auto-scaling stage, straight from the trace.

    Aggregates every ``switch.stage`` span (optionally restricted to one
    engine's track) — the per-stage view behind Figures 8 and 15.
    """
    totals: dict[str, float] = {}
    for span in tracer.spans:
        if span.cat != SWITCH_STAGE_CAT:
            continue
        if track is not None and span.track != track:
            continue
        totals[span.name] = totals.get(span.name, 0.0) + span.duration
    return totals


def _switch_spans(tracer: Tracer) -> list[SpanRecord]:
    return [span for span in tracer.spans if span.cat == SWITCH_CAT]


def format_switch_breakdown(tracer: Tracer) -> str:
    """Human-readable per-stage switch summary from a trace dump."""
    switches = _switch_spans(tracer)
    stages = switch_breakdown(tracer)
    if not switches:
        return "no model switches recorded"
    total = sum(span.duration for span in switches)
    hits = sum(1 for span in switches if span.args.get("prefetch_hit"))
    lines = [
        f"model switches: {len(switches)}, total {total:.3f} s, "
        f"prefetch hits {hits}/{len(switches)}"
    ]
    width = max(len(name) for name in stages) if stages else 0
    for name, seconds in sorted(stages.items(), key=lambda kv: -kv[1]):
        share = seconds / total if total > 0 else 0.0
        lines.append(f"  {name.ljust(width)}  {seconds:8.3f} s  {share:6.1%}")
    return "\n".join(lines)
