"""Counters, gauges, and histograms with per-component scoping.

A :class:`MetricsRegistry` hands out metric instruments keyed by
``(scope, name)`` — scope being the owning component (``decode3``,
``cpu_kv``) — and snapshots them into a flat mapping for export.  When
the registry is disabled every request returns shared null instruments,
so instrumented code records unconditionally and pays a no-op call when
observability is off.
"""

from __future__ import annotations

import bisect
from typing import Callable, Optional, Sequence, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricsScope"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A point-in-time value, set directly or sampled from a callable."""

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = value
        self._fn = None

    def set_fn(self, fn: Callable[[], float]) -> None:
        """Sample the gauge from ``fn`` at read time (live views)."""
        self._fn = fn

    @property
    def value(self) -> float:
        """The current gauge reading."""
        return float(self._fn()) if self._fn is not None else self._value


class Histogram:
    """A sample distribution with exact percentiles.

    Samples are kept sorted (insertion via bisect), so percentile reads
    are cheap and exact; the simulation's sample counts (switches,
    waits) stay far below the sizes where a sketch would be needed.
    """

    __slots__ = ("_sorted", "total")

    def __init__(self) -> None:
        self._sorted: list[float] = []
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        bisect.insort(self._sorted, value)
        self.total += value

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self._sorted)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (nan when empty)."""
        return self.total / len(self._sorted) if self._sorted else float("nan")

    def percentile(self, p: float) -> float:
        """Exact percentile by linear interpolation (nan when empty)."""
        if not self._sorted:
            return float("nan")
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if len(self._sorted) == 1:
            return self._sorted[0]
        rank = (p / 100.0) * (len(self._sorted) - 1)
        low = int(rank)
        high = min(low + 1, len(self._sorted) - 1)
        fraction = rank - low
        return self._sorted[low] * (1 - fraction) + self._sorted[high] * fraction

    def summary(self, points: Sequence[float] = (50, 90, 99)) -> dict[str, float]:
        """Count, mean, and the requested percentiles as a mapping."""
        out: dict[str, float] = {"count": float(self.count), "mean": self.mean}
        for p in points:
            out[f"p{p:g}"] = self.percentile(p)
        return out


class _NullCounter(Counter):
    """Shared counter that records nothing (disabled registry)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""


class _NullGauge(Gauge):
    """Shared gauge that records nothing (disabled registry)."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """No-op."""

    def set_fn(self, fn: Callable[[], float]) -> None:
        """No-op."""


class _NullHistogram(Histogram):
    """Shared histogram that records nothing (disabled registry)."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """No-op."""


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()

Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Registry of scoped counters/gauges/histograms."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: dict[tuple[str, str], Metric] = {}

    # -- instruments ---------------------------------------------------------
    def counter(self, name: str, scope: str = "") -> Counter:
        """The counter ``scope/name``, created on first use."""
        return self._get(name, scope, Counter, _NULL_COUNTER)

    def gauge(self, name: str, scope: str = "") -> Gauge:
        """The gauge ``scope/name``, created on first use."""
        return self._get(name, scope, Gauge, _NULL_GAUGE)

    def histogram(self, name: str, scope: str = "") -> Histogram:
        """The histogram ``scope/name``, created on first use."""
        return self._get(name, scope, Histogram, _NULL_HISTOGRAM)

    def scoped(self, scope: str) -> "MetricsScope":
        """A view that prefixes every instrument with ``scope``."""
        return MetricsScope(self, scope)

    def _get(self, name: str, scope: str, cls: type, null: Metric) -> Metric:
        if not self.enabled:
            return null
        key = (scope, name)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {scope}/{name} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    # -- export --------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Flatten every metric into ``scope/name`` keys.

        Counters and gauges flatten to their value; histograms to a
        ``{count, mean, p50, p90, p99}`` mapping.
        """
        out: dict[str, object] = {}
        for (scope, name), metric in sorted(self._metrics.items()):
            key = f"{scope}/{name}" if scope else name
            if isinstance(metric, Histogram):
                out[key] = metric.summary()
            else:
                out[key] = metric.value
        return out

    def __len__(self) -> int:
        return len(self._metrics)


class MetricsScope:
    """A registry view bound to one component scope."""

    __slots__ = ("_registry", "_scope")

    def __init__(self, registry: MetricsRegistry, scope: str):
        self._registry = registry
        self._scope = scope

    def counter(self, name: str) -> Counter:
        """The counter ``name`` under this scope."""
        return self._registry.counter(name, scope=self._scope)

    def gauge(self, name: str) -> Gauge:
        """The gauge ``name`` under this scope."""
        return self._registry.gauge(name, scope=self._scope)

    def histogram(self, name: str) -> Histogram:
        """The histogram ``name`` under this scope."""
        return self._registry.histogram(name, scope=self._scope)
