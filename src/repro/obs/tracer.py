"""Typed span/event tracing on the simulated clock.

The :class:`Tracer` records three kinds of typed records, all stamped
with simulated time:

* :class:`SpanRecord` — an interval on one *track* (a component such as
  ``decode3`` or ``prefill0.kv_in``): request lifecycle stages, scheduling
  rounds, model switches with per-stage children, KV transfers.
* :class:`InstantRecord` — a point event (a dispatch decision, a swap
  issued).
* :class:`CounterSample` — a timestamped numeric sample (queue depth over
  time), rendered as a counter track by the Chrome trace viewer.

Nesting is tracked per track: a span opened while another span on the
same track is open records that span's name as its ``parent``.  When the
tracer is disabled every call is a no-op against shared singletons, so
instrumented hot paths pay one attribute test and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Tracer", "SpanRecord", "InstantRecord", "CounterSample"]


@dataclass
class SpanRecord:
    """One completed interval on a track."""

    name: str
    cat: str
    track: str
    start: float
    end: float
    args: dict[str, Any] = field(default_factory=dict)
    parent: Optional[str] = None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.end - self.start

    def contains(self, other: "SpanRecord") -> bool:
        """True if ``other`` lies within this span on the same track."""
        return (
            self.track == other.track
            and self.start <= other.start
            and other.end <= self.end
            and other is not self
        )


@dataclass
class InstantRecord:
    """One point event on a track."""

    name: str
    cat: str
    track: str
    ts: float
    args: dict[str, Any] = field(default_factory=dict)


@dataclass
class CounterSample:
    """One timestamped numeric sample (a counter-track point)."""

    name: str
    track: str
    ts: float
    value: float


class _Span:
    """Context manager recording one span on enter/exit."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self._record = record

    def set(self, **args: Any) -> "_Span":
        """Attach arguments discovered while the span is open."""
        self._record.args.update(args)
        return self

    def __enter__(self) -> "_Span":
        stack = self._tracer._stacks.setdefault(self._record.track, [])
        if stack:
            self._record.parent = stack[-1].name
        stack.append(self._record)
        return self

    def __exit__(self, *exc_info: object) -> None:
        record = self._record
        record.end = self._tracer._clock()
        stack = self._tracer._stacks.get(record.track)
        if stack and stack[-1] is record:
            stack.pop()
        self._tracer.spans.append(record)


class _NullSpan:
    """Shared no-op span for the disabled tracer."""

    __slots__ = ()

    def set(self, **args: Any) -> "_NullSpan":
        """No-op."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects typed span/instant/counter records on a simulated clock."""

    def __init__(self, clock: Optional[Callable[[], float]] = None, enabled: bool = True):
        self.enabled = enabled
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self.counters: list[CounterSample] = []
        # Per-track stacks of currently-open spans (for parent linkage).
        self._stacks: dict[str, list[SpanRecord]] = {}

    # -- recording ----------------------------------------------------------
    def span(self, name: str, cat: str = "", track: str = "", **args: Any):
        """Open a span; use as ``with tracer.span(...):`` around the work."""
        if not self.enabled:
            return _NULL_SPAN
        record = SpanRecord(
            name=name, cat=cat, track=track, start=self._clock(), end=0.0, args=args
        )
        return _Span(self, record)

    def complete(
        self,
        name: str,
        cat: str,
        track: str,
        start: float,
        end: float,
        parent: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Record an already-measured interval (retroactive span)."""
        if not self.enabled:
            return
        self.spans.append(
            SpanRecord(
                name=name, cat=cat, track=track, start=start, end=end,
                args=args, parent=parent,
            )
        )

    def instant(self, name: str, cat: str = "", track: str = "", **args: Any) -> None:
        """Record a point event at the current simulated time."""
        if not self.enabled:
            return
        self.instants.append(
            InstantRecord(name=name, cat=cat, track=track, ts=self._clock(), args=args)
        )

    def counter(self, name: str, track: str, value: float) -> None:
        """Record one timestamped counter sample."""
        if not self.enabled:
            return
        self.counters.append(
            CounterSample(name=name, track=track, ts=self._clock(), value=value)
        )

    # -- access -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    def spans_named(self, name: str) -> list[SpanRecord]:
        """All spans with ``name``, in completion order."""
        return [span for span in self.spans if span.name == name]

    def children_of(self, parent: SpanRecord) -> list[SpanRecord]:
        """Spans nested (by time containment) directly under ``parent``."""
        return [
            span
            for span in self.spans
            if parent.contains(span) and span.parent == parent.name
        ]

    def clear(self) -> None:
        """Drop all records (open spans keep recording into the new lists)."""
        self.spans = []
        self.instants = []
        self.counters = []
