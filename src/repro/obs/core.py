"""The :class:`Observability` facade threaded through the serving stack.

One :class:`Observability` object bundles a :class:`~repro.obs.tracer.Tracer`
and a :class:`~repro.obs.metrics.MetricsRegistry` behind one
:class:`~repro.obs.config.ObsConfig`.  Serving systems construct it bound
to their simulation clock and hand it down to every component; components
default to the shared :data:`NULL_OBS`, whose instruments are inert, so
instrumentation is unconditional in code and near-free when disabled.
"""

from __future__ import annotations

from typing import Callable, Optional

from .config import ObsConfig
from .metrics import MetricsRegistry, MetricsScope
from .tracer import Tracer

__all__ = ["Observability", "NULL_OBS"]


class Observability:
    """Tracer + metrics registry for one run, behind one config."""

    def __init__(
        self,
        config: ObsConfig = ObsConfig(),
        clock: Optional[Callable[[], float]] = None,
    ):
        self.config = config
        self.tracer = Tracer(clock=clock, enabled=config.full_trace)
        self.metrics = MetricsRegistry(enabled=config.enabled)

    @property
    def enabled(self) -> bool:
        """True if anything (metrics or trace) is recording."""
        return self.config.enabled

    def scoped(self, scope: str) -> MetricsScope:
        """Metric instruments under one component scope."""
        return self.metrics.scoped(scope)

    def __repr__(self) -> str:
        return (
            f"<Observability metrics={self.config.metrics} "
            f"full_trace={self.config.full_trace}>"
        )


#: Shared disabled instance — the default for every instrumented component.
NULL_OBS = Observability(ObsConfig())
