"""Structured observability: tracing, metrics, and timeline export.

``repro.obs`` is the cluster-wide observability layer.  Every serving
system built through :func:`repro.core.build_system` owns an
:class:`Observability` (tracer + metrics registry) configured by an
:class:`ObsConfig`; the engine, schedulers, instances, KV transfer
machinery, and allocators all record into it.  Exporters turn a run into
a Chrome ``trace_event`` timeline, CSV/JSON metric dumps, or the
Figure 8/15-style switch breakdowns.
"""

from .config import ObsConfig
from .core import NULL_OBS, Observability
from .exporters import (
    chrome_trace,
    format_switch_breakdown,
    metrics_to_csv,
    metrics_to_json,
    switch_breakdown,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, MetricsScope
from .tracer import CounterSample, InstantRecord, SpanRecord, Tracer

__all__ = [
    "Counter",
    "CounterSample",
    "Gauge",
    "Histogram",
    "InstantRecord",
    "MetricsRegistry",
    "MetricsScope",
    "NULL_OBS",
    "ObsConfig",
    "Observability",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "format_switch_breakdown",
    "metrics_to_csv",
    "metrics_to_json",
    "switch_breakdown",
    "write_chrome_trace",
]
