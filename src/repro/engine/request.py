"""Runtime request lifecycle.

A :class:`Request` wraps a :class:`~repro.workload.trace.TraceRequest`
with everything the serving systems mutate: phase state, per-token
completion timestamps (the raw data behind per-token SLO attainment,
Figure 3), and the request's KV-cache handle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..models.catalog import ModelSpec
from ..transfer.kv_transfer import RequestKv
from ..workload.trace import TraceRequest

__all__ = ["Phase", "Request"]


class Phase(enum.Enum):
    """Where a request is in its lifecycle."""

    QUEUED = "queued"  # waiting for prefill
    PREFILLING = "prefilling"
    DECODING = "decoding"  # includes waiting in a work list
    FINISHED = "finished"
    FAILED = "failed"  # gave up mid-flight (e.g. retries exhausted)
    REJECTED = "rejected"  # turned away at admission (no live capacity)


@dataclass
class Request:
    """One in-flight request."""

    trace: TraceRequest
    spec: ModelSpec
    phase: Phase = Phase.QUEUED
    token_times: list[float] = field(default_factory=list)
    kv: Optional[RequestKv] = None
    prefill_start: Optional[float] = None
    prefill_end: Optional[float] = None
    decode_enqueue: Optional[float] = None
    finish_time: Optional[float] = None
    # Time this request's batch actually spent decoding while the
    # request was in it (feeds the Figure 14 latency breakdown).
    decode_exec_time: float = 0.0
    # Flattened hot fields.  ``input_tokens``/``output_tokens`` are copied
    # out of the trace and ``generated_tokens`` is maintained by
    # ``record_tokens`` so the per-step scheduler loops read plain slots
    # instead of chasing trace delegation / ``len(token_times)`` through
    # properties millions of times per run.
    input_tokens: int = field(init=False, repr=False)
    output_tokens: int = field(init=False, repr=False)
    generated_tokens: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        self.input_tokens = self.trace.input_tokens
        self.output_tokens = self.trace.output_tokens
        self.generated_tokens = len(self.token_times)

    # -- identity ----------------------------------------------------------
    @property
    def request_id(self) -> int:
        return self.trace.request_id

    @property
    def model(self) -> str:
        return self.trace.model

    @property
    def arrival(self) -> float:
        return self.trace.arrival

    # -- progress ----------------------------------------------------------
    @property
    def remaining_tokens(self) -> int:
        return self.output_tokens - self.generated_tokens

    @property
    def finished(self) -> bool:
        return self.generated_tokens >= self.output_tokens

    @property
    def context_tokens(self) -> int:
        """Current sequence length (prompt + generated)."""
        return self.input_tokens + self.generated_tokens

    @property
    def first_token_time(self) -> Optional[float]:
        return self.token_times[0] if self.token_times else None

    # -- mutation ----------------------------------------------------------
    def record_tokens(self, times: list[float]) -> None:
        """Append completion timestamps for newly generated tokens."""
        generated = self.generated_tokens + len(times)
        if generated > self.output_tokens:
            raise ValueError(
                f"request {self.request_id}: generated past output length"
            )
        self.token_times.extend(times)
        self.generated_tokens = generated

    def reset_progress(self) -> None:
        """Restart from prefill: discard generated tokens and their times."""
        self.token_times.clear()
        self.generated_tokens = 0

    def complete(self, now: float) -> None:
        """Mark the request finished."""
        if not self.finished:
            raise ValueError(f"request {self.request_id} has tokens remaining")
        self.phase = Phase.FINISHED
        self.finish_time = now

    def __repr__(self) -> str:
        return (
            f"<Request {self.request_id} {self.model} {self.phase.value} "
            f"{self.generated_tokens}/{self.output_tokens}>"
        )
