"""Runtime request lifecycle.

A :class:`Request` wraps a :class:`~repro.workload.trace.TraceRequest`
with everything the serving systems mutate: phase state, per-token
completion timestamps (the raw data behind per-token SLO attainment,
Figure 3), and the request's KV-cache handle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..models.catalog import ModelSpec
from ..transfer.kv_transfer import RequestKv
from ..workload.trace import TraceRequest

__all__ = ["Phase", "Request"]


class Phase(enum.Enum):
    """Where a request is in its lifecycle."""

    QUEUED = "queued"  # waiting for prefill
    PREFILLING = "prefilling"
    DECODING = "decoding"  # includes waiting in a work list
    FINISHED = "finished"
    FAILED = "failed"  # gave up mid-flight (e.g. retries exhausted)
    REJECTED = "rejected"  # turned away at admission (no live capacity)


@dataclass
class Request:
    """One in-flight request."""

    trace: TraceRequest
    spec: ModelSpec
    phase: Phase = Phase.QUEUED
    token_times: list[float] = field(default_factory=list)
    kv: Optional[RequestKv] = None
    prefill_start: Optional[float] = None
    prefill_end: Optional[float] = None
    decode_enqueue: Optional[float] = None
    finish_time: Optional[float] = None
    # Time this request's batch actually spent decoding while the
    # request was in it (feeds the Figure 14 latency breakdown).
    decode_exec_time: float = 0.0

    # -- identity ----------------------------------------------------------
    @property
    def request_id(self) -> int:
        return self.trace.request_id

    @property
    def model(self) -> str:
        return self.trace.model

    @property
    def arrival(self) -> float:
        return self.trace.arrival

    @property
    def input_tokens(self) -> int:
        return self.trace.input_tokens

    @property
    def output_tokens(self) -> int:
        return self.trace.output_tokens

    # -- progress ----------------------------------------------------------
    @property
    def generated_tokens(self) -> int:
        """Output tokens produced so far (prefill's token included)."""
        return len(self.token_times)

    @property
    def remaining_tokens(self) -> int:
        return self.output_tokens - self.generated_tokens

    @property
    def finished(self) -> bool:
        return self.generated_tokens >= self.output_tokens

    @property
    def context_tokens(self) -> int:
        """Current sequence length (prompt + generated)."""
        return self.input_tokens + self.generated_tokens

    @property
    def first_token_time(self) -> Optional[float]:
        return self.token_times[0] if self.token_times else None

    # -- mutation ----------------------------------------------------------
    def record_tokens(self, times: list[float]) -> None:
        """Append completion timestamps for newly generated tokens."""
        if self.generated_tokens + len(times) > self.output_tokens:
            raise ValueError(
                f"request {self.request_id}: generated past output length"
            )
        self.token_times.extend(times)

    def complete(self, now: float) -> None:
        """Mark the request finished."""
        if not self.finished:
            raise ValueError(f"request {self.request_id} has tokens remaining")
        self.phase = Phase.FINISHED
        self.finish_time = now

    def __repr__(self) -> str:
        return (
            f"<Request {self.request_id} {self.model} {self.phase.value} "
            f"{self.generated_tokens}/{self.output_tokens}>"
        )
