"""Continuous batching (Orca-style), used by the baseline engines.

The baseline systems run conventional single-model engines: new requests
join the running batch at step boundaries, prefills are chunk-scheduled
ahead of decodes (vLLM's default), and admission is bounded by the KV
pool and a token budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from .block_manager import BlockManager
from .request import Phase, Request

__all__ = ["BatchingPolicy", "ContinuousBatcher"]


@dataclass(frozen=True)
class BatchingPolicy:
    """Admission limits for one engine."""

    max_batch_size: int = 64
    max_prefill_tokens: int = 8192

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0 or self.max_prefill_tokens <= 0:
            raise ValueError("batching limits must be positive")


class ContinuousBatcher:
    """Tracks the running set of one single-model engine."""

    def __init__(self, block_manager: BlockManager, policy: BatchingPolicy = BatchingPolicy()):
        self.block_manager = block_manager
        self.policy = policy
        self.waiting: list[Request] = []
        self.running: list[Request] = []

    def enqueue(self, request: Request) -> None:
        """Add a request to the waiting queue."""
        self.waiting.append(request)

    def admit_prefills(self) -> list[Request]:
        """Admit waiting requests for the next prefill batch.

        Respects FCFS order, the KV pool, the batch-size cap, and the
        prefill token budget.  Admitted requests get their block tables.
        """
        admitted: list[Request] = []
        token_budget = self.policy.max_prefill_tokens
        while self.waiting:
            request = self.waiting[0]
            over_batch = (
                len(self.running) + len(admitted) >= self.policy.max_batch_size
            )
            over_tokens = admitted and request.input_tokens > token_budget
            if over_batch or over_tokens:
                break
            if not self.block_manager.can_admit(request.context_tokens + 1):
                break
            self.waiting.pop(0)
            self.block_manager.allocate(
                request.request_id, request.context_tokens + 1
            )
            token_budget -= request.input_tokens
            admitted.append(request)
        return admitted

    def start_decoding(self, requests: list[Request]) -> None:
        """Move prefilled requests into the running (decoding) set."""
        for request in requests:
            request.phase = Phase.DECODING
            self.running.append(request)

    def decode_batch(self) -> list[Request]:
        """The current decode batch (all running requests)."""
        return list(self.running)

    def grow_tables(self, requests: list[Request]) -> list[Request]:
        """Extend block tables by one token; preempt on pool exhaustion.

        Returns any requests that had to be evicted (vLLM recompute-style
        preemption: their blocks are released and they rejoin the waiting
        queue head).
        """
        evicted: list[Request] = []
        for request in reversed(requests):  # evict newest first
            try:
                self.block_manager.append_tokens(
                    request.request_id, request.context_tokens, 1
                )
            except MemoryError:
                self.block_manager.release(request.request_id)
                self.running.remove(request)
                request.phase = Phase.QUEUED
                evicted.append(request)
                self.waiting.insert(0, request)
        return evicted

    def retire(self, request: Request) -> None:
        """Release a finished request."""
        self.block_manager.release(request.request_id)
        self.running.remove(request)

    @property
    def has_work(self) -> bool:
        return bool(self.waiting or self.running)
