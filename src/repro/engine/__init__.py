"""vLLM-like inference-engine simulation with preemptive auto-scaling."""

from .batching import BatchingPolicy, ContinuousBatcher
from .block_manager import BlockManager
from .engine import AegaeonEngine, EngineConfig, ScaleRecord
from .init_stages import DEFAULT_INIT_COSTS, SWITCH_STAGES, InitStageCosts
from .request import Phase, Request

__all__ = [
    "AegaeonEngine",
    "BatchingPolicy",
    "BlockManager",
    "ContinuousBatcher",
    "DEFAULT_INIT_COSTS",
    "EngineConfig",
    "InitStageCosts",
    "Phase",
    "Request",
    "ScaleRecord",
    "SWITCH_STAGES",
]
