"""Engine (re)initialization cost model (§5.1, Figure 7).

The paper breaks a fresh vLLM-style engine initialization into stages and
reports that the total reaches **26.9 s for a 13B model (TP=2)**:

* distributed executor (Ray + NCCL) — tens of seconds at high TP;
* profiling & optimization (KV sizing) — several seconds;
* model weight loading — 4.6 s for the 13B shard at 2.83 GB/s;
* KV-cache initialization (pinning CPU pages) — several seconds;
* other components (scheduler, tokenizer, logging).

With Aegaeon's component reuse (§5.1) every stage except weight/KV
handling is initialized once per instance and cached; a model switch
pays only a small reconfiguration cost plus the actual data movement.
The default constants below reproduce the 26.9 s headline exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.catalog import ModelSpec
from ..models.latency import NAIVE_LOAD_BANDWIDTH

__all__ = ["InitStageCosts", "DEFAULT_INIT_COSTS", "SWITCH_STAGES"]

#: Every stage label the engine's scaling state machine can emit, in
#: execution order — the key space of ``ScaleRecord.stages`` and of the
#: ``switch.stage`` trace spans consumed by the exporters.
SWITCH_STAGES = (
    "kv_out_sync",
    "gc",
    "reinit",
    "dist_executor_init",
    "profiling",
    "kv_init",
    "misc",
    "prefetch_wait",
    "model_promote",
    "model_load",
)


@dataclass(frozen=True)
class InitStageCosts:
    """Per-stage initialization latencies (seconds)."""

    dist_executor_base: float = 8.0
    dist_executor_per_tp: float = 2.0
    profiling: float = 3.5
    kv_pin_init: float = 4.2
    misc: float = 2.6
    # PyTorch allocator cleanup between back-to-back models (§5.2):
    # gc.collect() + torch.cuda.empty_cache().
    gc_pass: float = 2.5
    # Residual per-switch cost with full component reuse: swapping
    # tokenizer handles, refreshing engine config, scheduler state.
    reconfigure: float = 0.15

    def dist_executor(self, tp: int) -> float:
        """Ray/NCCL bring-up time for a TP group."""
        return self.dist_executor_base + self.dist_executor_per_tp * tp

    def naive_load(self, model: ModelSpec, tp: int) -> float:
        """Weight-loading time on the unoptimized engine path."""
        return model.weight_bytes / tp / NAIVE_LOAD_BANDWIDTH

    def fresh_stages(self, model: ModelSpec, tp: int) -> dict[str, float]:
        """Stage breakdown of a cold engine initialization (Figure 7)."""
        return {
            "dist_executor_init": self.dist_executor(tp),
            "profiling": self.profiling,
            "model_load": self.naive_load(model, tp),
            "kv_init": self.kv_pin_init,
            "misc": self.misc,
        }

    def fresh_total(self, model: ModelSpec, tp: int) -> float:
        """Total cold-initialization latency."""
        return sum(self.fresh_stages(model, tp).values())

    def reused_stages(self) -> dict[str, float]:
        """Per-switch engine costs once components are reused.

        Model loading and KV handling are charged separately by the
        caller (they depend on the loader and the KV traffic).
        """
        return {"reconfigure": self.reconfigure}


DEFAULT_INIT_COSTS = InitStageCosts()
