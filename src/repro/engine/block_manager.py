"""vLLM-style paged KV block manager (single-model engines).

The baselines (ServerlessLLM, MuxServe, dedicated instances) run
conventional engines whose KV cache is a per-model paged pool, sized at
engine initialization from the VRAM left after weights.  This is the
PagedAttention design: fixed-size blocks, per-request block tables,
admission control by free-block count.

Aegaeon itself does *not* use this — its unified KV cache is the slab
allocator in :mod:`repro.memory.slab` — which is precisely the §5.2
distinction this reproduction preserves.
"""

from __future__ import annotations

from ..models.catalog import ModelSpec
from ..models.kv import DEFAULT_BLOCK_TOKENS, kv_block_bytes

__all__ = ["BlockManager"]


class BlockManager:
    """Paged KV pool for one model on one engine."""

    def __init__(
        self,
        pool_bytes: int,
        model: ModelSpec,
        tp: int = 1,
        block_tokens: int = DEFAULT_BLOCK_TOKENS,
    ):
        self.block_tokens = block_tokens
        self.block_bytes = kv_block_bytes(model, tp, block_tokens)
        self.total_blocks = pool_bytes // self.block_bytes
        if self.total_blocks <= 0:
            raise MemoryError(
                f"KV pool of {pool_bytes} bytes holds no blocks of "
                f"{self.block_bytes} bytes ({model.name})"
            )
        self._tables: dict[int, int] = {}  # request_id -> blocks held

    # -- admission ----------------------------------------------------------
    def blocks_needed(self, tokens: int) -> int:
        """Blocks required to hold ``tokens`` tokens."""
        return max(1, -(-tokens // self.block_tokens))

    @property
    def free_blocks(self) -> int:
        return self.total_blocks - sum(self._tables.values())

    def can_admit(self, tokens: int) -> bool:
        """Would a request with ``tokens`` context fit right now?"""
        return self.blocks_needed(tokens) <= self.free_blocks

    # -- allocation -----------------------------------------------------------
    def allocate(self, request_id: int, tokens: int) -> None:
        """Give a new request its initial block table."""
        if request_id in self._tables:
            raise ValueError(f"request {request_id} already has a block table")
        needed = self.blocks_needed(tokens)
        if needed > self.free_blocks:
            raise MemoryError(
                f"KV pool exhausted: need {needed}, free {self.free_blocks}"
            )
        self._tables[request_id] = needed

    def append_tokens(self, request_id: int, old_tokens: int, new_tokens: int) -> None:
        """Grow a request's table as decoding extends the sequence."""
        held = self._tables.get(request_id)
        if held is None:
            raise KeyError(f"request {request_id} has no block table")
        needed = self.blocks_needed(old_tokens + new_tokens)
        growth = needed - held
        if growth > 0:
            if growth > self.free_blocks:
                raise MemoryError("KV pool exhausted during decode")
            self._tables[request_id] = needed

    def release(self, request_id: int) -> None:
        """Free a finished (or preempted) request's blocks."""
        if request_id not in self._tables:
            raise KeyError(f"request {request_id} has no block table")
        del self._tables[request_id]

    def holds(self, request_id: int) -> bool:
        """True if the request currently owns a block table."""
        return request_id in self._tables

    @property
    def utilization(self) -> float:
        """Fraction of the pool currently allocated."""
        if self.total_blocks == 0:
            return 0.0
        return 1.0 - self.free_blocks / self.total_blocks
