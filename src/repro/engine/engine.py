"""Scaling-efficient inference engine (the paper's §5 engine).

:class:`AegaeonEngine` binds one TP group of GPUs to a reusable engine
shell.  It owns:

* a self-managed VRAM weight buffer (bump allocation, §5.2);
* a unified GPU KV cache (slab allocation) behind a
  :class:`~repro.transfer.kv_transfer.KvTransferManager`;
* the quick/naive loaders and an optional prefetch stream;
* the preemptive scale-down/scale-up state machine, recording a
  per-stage latency breakdown for every switch (Figures 7/8/15).

Optimization flags in :class:`EngineConfig` gate each §5 technique so
the ablation benchmarks can flip them independently:

* ``reuse_components`` — §5.1: initialize Ray/NCCL, profiling, pinned
  KV pools, tokenizers once; otherwise every switch pays a fresh
  initialization.
* ``explicit_memory`` — §5.2: bump-allocated weights (no GC pass) and
  the pipelined quick loader; otherwise a GC pass plus the naive
  2.83 GB/s loader.
* ``fine_grained_sync`` — §5.3: per-request CUDA events; otherwise each
  switch drains the KV streams with blocking synchronization.
* ``prefetch`` — §5.2: load the next model on a separate stream during
  decoding, making ~half of all scale-ups near-instant (Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..hardware.gpu import Gpu
from ..hardware.node import Node
from ..memory.bump import BumpAllocation, BumpAllocator
from ..memory.model_cache import HostModelCache
from ..memory.slab import SlabAllocator
from ..models.catalog import ModelSpec
from ..models.latency import LatencyModel
from ..obs import NULL_OBS, Observability
from ..sim import Environment
from ..transfer.kv_transfer import KvTransferManager, MoveList
from ..transfer.loader import CheckpointFetchError, NaiveLoader, QuickLoader
from ..transfer.streams import CudaEvent, CudaStream
from .init_stages import DEFAULT_INIT_COSTS, InitStageCosts

__all__ = ["EngineConfig", "ScaleRecord", "AegaeonEngine"]

GiB = 1024**3


@dataclass(frozen=True)
class EngineConfig:
    """Feature flags and sizing for one engine."""

    reuse_components: bool = True
    explicit_memory: bool = True
    fine_grained_sync: bool = True
    prefetch: bool = True
    tp: int = 1
    # Sized to hold a running shard plus a prefetched shard for most of
    # the paper's 6-14B model band, while leaving the KV cache enough
    # VRAM for full decode batches (the 13B/14B pair does not prefetch).
    weight_buffer_bytes: int = 44 * GiB
    slab_bytes: int = 256 * 1024**2
    block_tokens: int = 16
    activation_fraction: float = 0.10  # VRAM left to the tensor library

    @classmethod
    def unoptimized(cls, **overrides) -> "EngineConfig":
        """The T0 baseline: no §5 optimizations at all."""
        defaults = dict(
            reuse_components=False,
            explicit_memory=False,
            fine_grained_sync=False,
            prefetch=False,
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class ScaleRecord:
    """Timing of one preemptive scale operation."""

    model_from: Optional[str]
    model_to: str
    started: float
    stages: dict[str, float] = field(default_factory=dict)
    ended: float = 0.0
    prefetch_hit: bool = False

    @property
    def total(self) -> float:
        return self.ended - self.started


class AegaeonEngine:
    """One reusable engine shell on a TP group of GPUs."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        gpus: list[Gpu],
        model_cache: HostModelCache,
        cpu_kv_cache: SlabAllocator,
        move_list: Optional[MoveList] = None,
        config: EngineConfig = EngineConfig(),
        init_costs: InitStageCosts = DEFAULT_INIT_COSTS,
        name: str = "engine",
        pre_initialized: bool = False,
        obs: Observability = NULL_OBS,
    ):
        if len(gpus) != config.tp:
            raise ValueError(
                f"engine needs {config.tp} GPUs for TP={config.tp}, got {len(gpus)}"
            )
        self.env = env
        self.node = node
        self.gpus = gpus
        self.config = config
        self.init_costs = init_costs
        self.name = name
        # Shard traffic moves over each GPU's own link in parallel; the
        # group's wall time equals the lead GPU's, so the engine models
        # transfers on that link with per-shard byte counts.
        self.link = node.link(gpus[0])
        spec = gpus[0].spec
        kv_region = int(
            spec.vram_bytes * (1 - config.activation_fraction)
            - config.weight_buffer_bytes
        )
        if kv_region <= 0:
            raise MemoryError(
                f"{name}: weight buffer leaves no VRAM for the KV cache"
            )
        self.weights = BumpAllocator(capacity=config.weight_buffer_bytes)
        self.gpu_kv_cache = SlabAllocator(
            kv_region, config.slab_bytes, name=f"{name}.gpu_kv", obs=obs
        )
        self.kv = KvTransferManager(
            env,
            self.link,
            self.gpu_kv_cache,
            cpu_kv_cache,
            move_list=move_list,
            fine_grained=config.fine_grained_sync,
            name=name,
            obs=obs,
        )
        self.quick_loader = QuickLoader(env, self.link, model_cache)
        self.naive_loader = NaiveLoader(env, self.link)
        self.prefetch_stream = CudaStream(env, name=f"{name}.prefetch", obs=obs)
        self.current_model: Optional[ModelSpec] = None
        self._current_weights: Optional[BumpAllocation] = None
        self._prefetched: Optional[tuple[ModelSpec, BumpAllocation, CudaEvent]] = None
        self._latency_cache: dict[str, LatencyModel] = {}
        # A deployed instance boots its engine shell (Ray/NCCL, pinned
        # pools, tokenizers) before taking traffic; only engines without
        # component reuse re-pay that cost on every switch.
        self._fresh_boot_done = pre_initialized and config.reuse_components
        self.scale_history: list[ScaleRecord] = []
        self.busy_time = 0.0
        # Chaos surface: compute-latency multiplier (thermal throttling /
        # noisy neighbours).  Scales prefill and decode-step times, so
        # the schedulers see the slowdown through their estimates.
        self.perf_factor = 1.0
        self._tracer = obs.tracer
        scope = obs.scoped(name)
        self._switch_counter = scope.counter("switches")
        self._prefetch_hit_counter = scope.counter("prefetch_hits")
        self._switch_hist = scope.histogram("switch_latency_s")

    # -- latency models -----------------------------------------------------
    def latency_model(self, spec: ModelSpec) -> LatencyModel:
        """Cached latency model for ``spec`` on this engine's hardware."""
        model = self._latency_cache.get(spec.name)
        if model is None:
            model = LatencyModel(spec, self.gpus[0].spec, tp=self.config.tp)
            self._latency_cache[spec.name] = model
        return model

    def shard_bytes(self, spec: ModelSpec) -> int:
        """Per-GPU weight bytes for ``spec`` on this engine."""
        return spec.weight_bytes // self.config.tp

    def base_switch_time(self, spec: ModelSpec) -> float:
        """Eq. 4 estimate of a switch, ignoring any in-flight prefetch.

        This is the ``c`` the decode scheduler amortizes over a round:
        quotas must be sized as if every switch pays the full load, or
        turns collapse below the time a prefetch needs to complete.
        """
        if self.config.explicit_memory:
            return self.quick_loader.load_time(self.shard_bytes(spec))
        return self.naive_loader.load_time(self.shard_bytes(spec))

    def estimate_switch_time(self, spec: ModelSpec) -> float:
        """Best-case estimate of switching to ``spec`` right now."""
        if self.current_model is not None and self.current_model.name == spec.name:
            return 0.0
        if self._prefetch_ready(spec):
            return 0.05
        return self.base_switch_time(spec)

    # -- prefetch ------------------------------------------------------------
    def prefetch(self, spec: ModelSpec) -> bool:
        """Begin loading ``spec`` behind the running model.

        Returns True if the prefetch was started (or is already in
        flight).  Requires the prefetch flag, spare weight-buffer space,
        and a host-cached checkpoint (remote fetches are not worth
        racing against a decode turn).
        """
        if not (self.config.prefetch and self.config.explicit_memory):
            return False
        if self.current_model is not None and spec.name == self.current_model.name:
            return False
        if self._prefetched is not None:
            return self._prefetched[0].name == spec.name
        nbytes = self.shard_bytes(spec)
        if self.weights.free < nbytes:
            return False
        if not self.quick_loader.model_cache.contains(spec.name):
            return False
        allocation = self.weights.alloc(nbytes, tag=f"prefetch:{spec.name}")

        def start() -> Generator:
            done = yield from self.quick_loader.load(
                spec.name, nbytes, stream=self.prefetch_stream
            )
            return done

        # load() with a stream enqueues synchronously and returns the
        # CudaEvent immediately; drive the generator to completion now.
        process = self.env.process(start())
        self._prefetched = (spec, allocation, process)
        return True

    def _prefetch_ready(self, spec: ModelSpec) -> bool:
        if self._prefetched is None or self._prefetched[0].name != spec.name:
            return False
        process = self._prefetched[2]
        if not process.triggered:
            return False
        event: CudaEvent = process.value
        return event.query()

    def _drop_prefetch(self) -> None:
        if self._prefetched is not None:
            _, allocation, _ = self._prefetched
            if not allocation.freed:
                self.weights.retire(allocation)
            self._prefetched = None

    # -- scaling state machine -------------------------------------------------
    def scale_to(self, spec: ModelSpec) -> Generator:
        """Process: make ``spec`` the active model (Figures 8/10).

        Returns the :class:`ScaleRecord` with the per-stage breakdown.
        """
        record = ScaleRecord(
            model_from=self.current_model.name if self.current_model else None,
            model_to=spec.name,
            started=self.env.now,
        )
        if self.current_model is not None and self.current_model.name == spec.name:
            record.ended = self.env.now
            return record

        tracer = self._tracer
        with tracer.span(
            "model_switch", cat="switch", track=self.name,
            model_from=record.model_from, model_to=spec.name,
        ) as switch_span:
            # Stage 1 — KV-out synchronization.  With fine-grained sync the
            # offloads proceed on their own stream and nothing blocks here.
            if not self.config.fine_grained_sync:
                start = self.env.now
                with tracer.span("kv_out_sync", cat="switch.stage", track=self.name):
                    yield from self.kv.drain()
                record.stages["kv_out_sync"] = self.env.now - start

            # Stage 2 — VRAM reclamation.
            had_model = self.current_model is not None
            if had_model:
                if self.config.explicit_memory:
                    if self._current_weights is not None:
                        self.weights.retire(self._current_weights)
                        self._current_weights = None
                else:
                    start = self.env.now
                    with tracer.span("gc", cat="switch.stage", track=self.name):
                        yield self.env.timeout(self.init_costs.gc_pass)
                    record.stages["gc"] = self.env.now - start
                    self.weights.reset(0)
                    self._current_weights = None

            # Stage 3 — engine (re)initialization.
            start = self.env.now
            if self.config.reuse_components and self._fresh_boot_done:
                with tracer.span("reinit", cat="switch.stage", track=self.name):
                    yield self.env.timeout(self.init_costs.reconfigure)
                record.stages["reinit"] = self.env.now - start
            else:
                for stage, cost in [
                    ("dist_executor_init", self.init_costs.dist_executor(self.config.tp)),
                    ("profiling", self.init_costs.profiling),
                    ("kv_init", self.init_costs.kv_pin_init),
                    ("misc", self.init_costs.misc),
                ]:
                    with tracer.span(stage, cat="switch.stage", track=self.name):
                        yield self.env.timeout(cost)
                    record.stages[stage] = cost
                self._fresh_boot_done = True

            # Stage 4 — model weights.
            start = self.env.now
            nbytes = self.shard_bytes(spec)
            if (
                self._prefetched is not None
                and self._prefetched[0].name == spec.name
                and not self._prefetch_ready(spec)
            ):
                # The right model is mid-prefetch: finishing the in-flight
                # copy is cheaper than starting over.
                process = self._prefetched[2]
                with tracer.span("prefetch_wait", cat="switch.stage", track=self.name):
                    if not process.triggered:
                        yield process
                    yield process.value.wait()
                record.stages["prefetch_wait"] = self.env.now - start
            if self._prefetch_ready(spec):
                # Promote the prefetched weights with a cheap on-device copy
                # (Figure 9, step 3.b).
                _, allocation, _ = self._prefetched
                self._prefetched = None
                on_device_copy = nbytes / self.gpus[0].spec.effective_hbm_bandwidth
                with tracer.span("model_promote", cat="switch.stage", track=self.name):
                    yield self.env.timeout(on_device_copy)
                self.weights.compact_to_front(allocation)
                self._current_weights = allocation
                record.prefetch_hit = True
                record.stages["model_promote"] = self.env.now - start
            else:
                # An in-flight prefetch of another model is abandoned.
                self._drop_prefetch()
                # With every extent retired, bump the pointer home so the
                # buffer does not creep upward across switches.
                if not self.weights.live_allocations:
                    self.weights.reset(0)
                with tracer.span("model_load", cat="switch.stage", track=self.name):
                    if self.config.explicit_memory:
                        allocation = self.weights.alloc(nbytes, tag=f"weights:{spec.name}")
                        try:
                            yield from self.quick_loader.load(spec.name, nbytes)
                        except CheckpointFetchError:
                            # Abandoned switch: give the extent back so
                            # repeated failures cannot bleed the buffer.
                            self.weights.retire(allocation)
                            raise
                        self._current_weights = allocation
                    else:
                        self.weights.reset(0)
                        allocation = self.weights.alloc(nbytes, tag=f"weights:{spec.name}")
                        yield from self.naive_loader.load(spec.name, nbytes)
                        self._current_weights = allocation
                record.stages["model_load"] = self.env.now - start

            switch_span.set(prefetch_hit=record.prefetch_hit)

        self.current_model = spec
        record.ended = self.env.now
        self.scale_history.append(record)
        self._switch_counter.inc()
        self._switch_hist.observe(record.total)
        if record.prefetch_hit:
            self._prefetch_hit_counter.inc()
        return record

    # -- execution ----------------------------------------------------------
    def prefill(self, spec: ModelSpec, input_lengths: list[int]) -> Generator:
        """Process: run one prefill batch; returns its duration."""
        self._require_active(spec)
        duration = self.latency_model(spec).prefill_time(input_lengths) * self.perf_factor
        # The disabled-tracer path must stay allocation-free, so the span
        # (and its kwargs dict) is only built when recording.
        tracer = self._tracer
        if tracer.enabled:
            with tracer.span(
                "prefill", cat="exec", track=self.name,
                model=spec.name, batch=len(input_lengths),
            ):
                yield self.env.timeout(duration)
        else:
            yield self.env.timeout(duration)
        self.busy_time += duration
        return duration

    def decode_step_time(self, spec: ModelSpec, batch: int, context: int) -> float:
        """Predicted duration of one decode step (Eq. 6)."""
        return self.latency_model(spec).decode_step_time(batch, context) * self.perf_factor

    def decode_time_batch(self, spec: ModelSpec, batch_sizes, context_tokens):
        """Vectorized Eq. 6 over a whole decode round (one numpy pass).

        Element-wise identical to ``decode_step_time`` — the perf factor
        is applied per element exactly as the scalar path does.
        """
        return (
            self.latency_model(spec).decode_time_batch(batch_sizes, context_tokens)
            * self.perf_factor
        )

    def prefill_time_batch(self, spec: ModelSpec, input_lengths):
        """Vectorized Eq. 5 across many single-prompt prefills."""
        return (
            self.latency_model(spec).prefill_time_batch(input_lengths)
            * self.perf_factor
        )

    def decode_for(self, spec: ModelSpec, duration: float) -> Generator:
        """Process: occupy the default stream decoding for ``duration``."""
        self._require_active(spec)
        tracer = self._tracer
        if tracer.enabled:
            with tracer.span("decode", cat="exec", track=self.name, model=spec.name):
                yield self.env.timeout(duration)
        else:
            yield self.env.timeout(duration)
        self.busy_time += duration

    def _require_active(self, spec: ModelSpec) -> None:
        if self.current_model is None or self.current_model.name != spec.name:
            raise RuntimeError(
                f"{self.name}: {spec.name} is not the active model "
                f"(active: {self.current_model.name if self.current_model else None})"
            )

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the default stream ran token generation."""
        elapsed = self.env.now if elapsed is None else elapsed
        return 0.0 if elapsed <= 0 else min(1.0, self.busy_time / elapsed)
