"""Setup shim; all metadata lives in setup.cfg.

The project deliberately has no pyproject.toml: its presence forces pip
onto the PEP 517 isolated-build path, which needs network access to
fetch setuptools/wheel and therefore breaks ``pip install -e .`` on
air-gapped machines.
"""

from setuptools import setup

setup()
