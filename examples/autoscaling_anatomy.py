"""Anatomy of a preemptive auto-scale: watch the §5 optimizations work.

Drives one engine directly through scale-down/scale-up cycles with each
optimization level (T0 -> T3+prefetch), printing the per-stage latency
breakdown Figure 7/8 describe, then inspects the live memory state of
the bump-allocated weight buffer and the slab-allocated unified KV
cache.

Run:  python examples/autoscaling_anatomy.py
"""

from repro.analysis import format_table
from repro.engine import AegaeonEngine, EngineConfig
from repro.hardware import H800, Node
from repro.memory import HostModelCache, SlabAllocator
from repro.models import get_model, kv_shape
from repro.sim import Environment
from repro.transfer import RequestKv

GiB = 1024**3
MiB = 1024**2


def build_engine(env, config):
    node = Node(env, H800, gpu_count=1)
    cache = HostModelCache(640 * GiB)
    for name in ("Qwen-7B", "Yi-6B"):
        cache.insert(name, get_model(name).weight_bytes)
    cpu_kv = SlabAllocator(320 * GiB, 256 * MiB)
    return AegaeonEngine(env, node, node.gpus, cache, cpu_kv, config=config, pre_initialized=True)


def one_switch(config, prefetch=False):
    env = Environment()
    engine = build_engine(env, config)
    qwen, yi = get_model("Qwen-7B"), get_model("Yi-6B")

    def scenario():
        yield from engine.scale_to(qwen)
        # A decode batch with KV on the GPU.
        kvs = []
        for request_id in range(4):
            kv = RequestKv(request_id=request_id, shape=kv_shape(qwen), tokens=400)
            engine.kv.alloc_gpu(kv)
            kvs.append(kv)
        if prefetch:
            engine.prefetch(yi)
            yield from engine.decode_for(qwen, 2.0)
        for kv in kvs:
            engine.kv.swap_out(kv)
        if not config.fine_grained_sync:
            yield from engine.kv.drain()
        record = yield from engine.scale_to(yi)
        return record

    record = env.run(until=env.process(scenario()))
    return record, engine


def main() -> None:
    levels = [
        ("T0 unoptimized", EngineConfig.unoptimized(), False),
        ("T1 +reuse", EngineConfig(explicit_memory=False, fine_grained_sync=False, prefetch=False), False),
        ("T2 +memory", EngineConfig(fine_grained_sync=False, prefetch=False), False),
        ("T3 +fine sync", EngineConfig(prefetch=False), False),
        ("T3 +prefetch", EngineConfig(), True),
    ]
    rows = []
    for label, config, prefetch in levels:
        record, engine = one_switch(config, prefetch)
        stages = ", ".join(f"{k}={v:.2f}s" for k, v in record.stages.items())
        rows.append((label, f"{record.total:.3f} s", stages))
    print(format_table(["level", "switch", "stage breakdown"], rows,
                       title="Preemptive scale Qwen-7B -> Yi-6B"))

    # Peek at the memory managers after the last switch.
    _, engine = one_switch(EngineConfig(), prefetch=True)
    print("\nVRAM weight buffer (bump allocated):")
    for allocation in engine.weights.live_allocations:
        print(f"  [{allocation.offset:>12}..{allocation.end:>12})  {allocation.tag}")
    print(f"  pointer at {engine.weights.used} / {engine.weights.capacity} bytes")
    print("\nUnified CPU KV cache (slab allocated):")
    for stats in engine.kv.cpu_cache.shape_stats():
        print(
            f"  {stats.shape}: {stats.used_blocks} blocks in "
            f"{stats.slab_count} slabs, fragmentation {stats.fragmentation:.1%}"
        )


if __name__ == "__main__":
    main()
