"""Agentic DAG replay: session pipelines, bundle A/B, cost-routed variants.

A seeded agentic workload (``repro.workload.agentic``): Poisson session
arrivals, each session a 2-5 stage request DAG over one agent's model
variants (a small draft model and the large flagship), stage N+1
submitted only when stage N finishes (think-time gap included), all
driven by a :class:`~repro.core.SessionCoordinator` as ordinary sim
events, so every replay is byte-reproducible per seed — the printed
digest covers the rollup stats *and* the per-session conservation rows.

``--compare`` is the acceptance experiment, one serving pool per bundle
on the same trace:

* ``aegaeon`` (token-level scheduling, always-largest routing) must beat
  the ``serverless-llm`` baseline on per-token SLO attainment — the
  multi-model, bursty DAG traffic is exactly where request-level
  scaling's swap storms hurt.
* ``aegaeon-cost-router`` must keep every session's realized spend
  within the configured budget while beating always-largest routing on
  modeled $/token (easy stages ride the small variant).

Run:  python examples/agentic_replay.py             (single replay)
      python examples/agentic_replay.py --compare   (acceptance A/B)
      python examples/agentic_replay.py --quick --compare --out r.json
"""

import argparse
import hashlib
import json
import sys
import time

from repro.core import AegaeonConfig, SessionCoordinator, SystemSpec
from repro.core.serving import ServerlessLLMConfig
from repro.fleet.rollup import FleetRollup, ShardStats
from repro.policy import CostConstrainedRouter, get_bundle, stage_cost_usd
from repro.policy.placement import MARKET_HOURLY_USD
from repro.workload import AgenticConfig, agent_variant_groups, agentic_stream

#: The serving pool every bundle gets: one 4-GPU H800 node.
GPUS = 4


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--session-rate", type=float, default=2.0)
    parser.add_argument("--horizon", type=float, default=300.0)
    parser.add_argument("--agents", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--bundle", default="aegaeon",
        help="policy bundle for the single-replay mode",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="run the acceptance A/B: aegaeon vs serverless-llm vs "
        "aegaeon-cost-router on one DAG trace",
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="write per-bundle rollups (stats + sessions) as JSON",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink to a CI-sized run",
    )
    args = parser.parse_args()
    if args.quick:
        args.horizon, args.session_rate, args.agents = 120.0, 1.5, 6
    return args


def make_stream(args):
    """The shared trace: same seed, same DAGs, for every bundle."""
    return agentic_stream(
        AgenticConfig(
            session_rate=args.session_rate,
            horizon=args.horizon,
            seed=args.seed,
            agents=args.agents,
        ),
        groups=agent_variant_groups(args.agents),
    )


def build_spec(bundle: str) -> SystemSpec:
    """One pool per bundle, GPUS GPUs each, so the A/B is like for like."""
    if bundle.startswith("serverless-llm"):
        return SystemSpec(
            system=bundle,
            config=ServerlessLLMConfig(cluster="h800-quad"),
            policies=bundle,
        )
    return SystemSpec(
        system="aegaeon",
        config=AegaeonConfig(
            prefill_instances=1, decode_instances=GPUS - 1, cluster="h800-quad"
        ),
        policies=bundle,
    )


def run_bundle(args, bundle: str):
    """One replay of the shared trace under ``bundle``; returns a report."""
    stream = make_stream(args)
    system = build_spec(bundle).build()
    stats = ShardStats(shard=0, slo=system.slo)
    system.configure_streaming(retain_requests=False, request_sink=stats.fold)
    coordinator = SessionCoordinator(system.env, stream.spec_of, obs=system.obs)
    system.attach_sessions(coordinator)
    start = time.perf_counter()
    system.serve_stream(coordinator.wrap_stream(stream))
    wall = time.perf_counter() - start

    sessions = coordinator.summary()
    check_identities(system, coordinator, stats)
    rollup = FleetRollup([stats])
    hourly = system.gpu_count * MARKET_HOURLY_USD["H800"]
    cost_usd = hourly * system.env.now / 3600.0
    spend = CostConstrainedRouter.spend_of(system)
    tunables = system.policies.tunables
    return {
        "bundle": bundle,
        "wall": wall,
        "end_time": system.env.now,
        "stats": stats.as_dict(),
        "sessions": sessions,
        "slo_attainment": stats.slo_attainment,
        "cost_usd": cost_usd,
        "cost_per_token": rollup.cost_per_token(cost_usd),
        "tokens_generated": stats.tokens_generated,
        "routed_spend_usd": sum(spend.values()),
        "max_session_spend_usd": max(spend.values()) if spend else 0.0,
        "budget_usd": tunables.router_session_budget_usd,
        "router_counts": dict(CostConstrainedRouter.counts_of(system)),
        "digest": digest(stats, sessions),
    }


def check_identities(system, coordinator, stats):
    """Conservation every replay must close, session layer included."""
    s = coordinator.stats
    assert s.stages_submitted == (
        s.stages_finished + s.stages_failed + s.stages_rejected
    )
    assert s.sessions_started == s.sessions_completed + s.sessions_aborted
    assert coordinator.drained() and not coordinator._live
    assert stats.finished + stats.failed + stats.rejected == stats.requests
    assert stats.requests == system.registry.submitted == s.stages_submitted


def always_largest_spend(args) -> tuple[float, int]:
    """Modeled spend of the un-routed trace (every stage on its default,
    largest variant) — the router's $/token baseline."""
    stream = make_stream(args)
    total, tokens = 0.0, 0
    seen = set()
    rate = get_bundle("aegaeon-cost-router").tunables.router_usd_per_mtok_b
    for root in stream:
        if root.plan.session in seen:
            continue
        seen.add(root.plan.session)
        for stage in root.plan.stages:
            spec = stream.spec_of(stage.model)
            total += stage_cost_usd(
                stage.input_tokens, stage.output_tokens, spec.params_b, rate
            )
            tokens += stage.input_tokens + stage.output_tokens
    return total, tokens


def digest(stats, sessions):
    """Order-stable hash over the rollup and the session conservation rows."""
    payload = json.dumps([stats.as_dict(), sessions], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def print_report(report):
    s = report["sessions"]["stats"]
    print(
        f"  sessions {s['sessions_started']:>4} "
        f"(completed {s['sessions_completed']}, aborted {s['sessions_aborted']})"
        f"  stages {s['stages_submitted']}"
    )
    print(
        f"  SLO attainment  {report['slo_attainment']:.4f}   "
        f"tokens {report['tokens_generated']:,}"
    )
    cpt = report["cost_per_token"]
    print(
        f"  market cost     ${report['cost_usd']:.2f} "
        f"(${1e6 * cpt:.2f}/Mtok serving)" if cpt else "  market cost     n/a"
    )
    counts = report["router_counts"]
    if any(counts.values()):
        print(
            f"  router          kept {counts['kept']} "
            f"downgraded {counts['downgraded']} upgraded {counts['upgraded']} "
            f"shed {counts['shed']}; max session spend "
            f"${report['max_session_spend_usd']:.6f} "
            f"(budget ${report['budget_usd']:.6f})"
        )
    print(f"  wall            {report['wall']:.1f}s")
    print(f"  digest          {report['digest']}")


def write_rollup(path, reports):
    with open(path, "w") as handle:
        json.dump(reports, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    print(f"\nrollup json     {path}")


def run_compare(args):
    """The acceptance experiment (see module docstring)."""
    print(
        f"compare: {args.agents} agents x 2 variants on {GPUS} H800s, "
        f"{args.session_rate:g} sessions/s over {args.horizon:.0f}s "
        f"(seed {args.seed})"
    )
    reports = {}
    for bundle in ("serverless-llm", "aegaeon", "aegaeon-cost-router"):
        print(f"\n--- bundle={bundle} ---")
        reports[bundle] = run_bundle(args, bundle)
        print_report(reports[bundle])
    if args.out:
        write_rollup(args.out, reports)

    failures = []
    aeg = reports["aegaeon"]["slo_attainment"]
    sll = reports["serverless-llm"]["slo_attainment"]
    print(
        f"\nper-token SLO attainment: serverless-llm {sll:.4f} "
        f"vs aegaeon {aeg:.4f} ({aeg - sll:+.4f})"
    )
    if aeg <= sll:
        failures.append("aegaeon did not beat serverless-llm on attainment")

    router = reports["aegaeon-cost-router"]
    baseline_spend, tokens = always_largest_spend(args)
    routed_spend = router["routed_spend_usd"]
    print(
        f"modeled request spend: always-largest ${baseline_spend:.4f} "
        f"vs routed ${routed_spend:.4f} "
        f"({1e6 * baseline_spend / tokens:.2f} -> "
        f"{1e6 * routed_spend / tokens:.2f} $/Mtok, "
        f"{100 * (1 - routed_spend / baseline_spend):.0f}% saved)"
    )
    if routed_spend >= baseline_spend:
        failures.append("router did not improve $/token vs always-largest")
    if router["max_session_spend_usd"] > router["budget_usd"] + 1e-12:
        failures.append("a session exceeded the router budget")

    for failure in failures:
        print(f"error: {failure}")
    return 1 if failures else 0


def main():
    args = parse_args()
    if args.compare:
        return run_compare(args)
    print(
        f"agentic replay: bundle={args.bundle}, {args.agents} agents, "
        f"{args.session_rate:g} sessions/s over {args.horizon:.0f}s "
        f"(seed {args.seed})"
    )
    report = run_bundle(args, args.bundle)
    print_report(report)
    if args.out:
        write_rollup(args.out, {args.bundle: report})
    return 0


if __name__ == "__main__":
    sys.exit(main())
