"""Quickstart: serve many models on a small GPU pool with Aegaeon.

Builds Aegaeon on a 4-GPU cluster through the unified
``build_system()`` factory, pools it between twelve 6-14B models with
token-level auto-scaling, replays a synthetic market workload with full
observability on, and prints per-token SLO attainment, auto-scaling
statistics, and the per-stage model-switch breakdown rebuilt from the
trace.  It also writes a Chrome ``trace_event`` timeline you can open
at chrome://tracing or https://ui.perfetto.dev.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import AegaeonConfig, build_system
from repro.engine import EngineConfig
from repro.models import market_mix
from repro.obs import ObsConfig, format_switch_breakdown, write_chrome_trace
from repro.sim import Environment
from repro.workload import sharegpt, synthesize_trace

TRACE_PATH = "quickstart_trace.json"


def main() -> None:
    # 1. Aegaeon on a simulated 4-GPU node: one prefill instance, three
    #    decoding instances, all §5 optimizations on, full tracing.
    env = Environment()
    server = build_system(
        "aegaeon",
        env,
        AegaeonConfig(
            prefill_instances=1,
            decode_instances=3,
            engine=EngineConfig(),
            cluster="h800-quad",
            obs=ObsConfig.full(),
        ),
    )

    # 2. A workload: twelve models, sporadic arrivals, ShareGPT lengths.
    models = market_mix(12)
    trace = synthesize_trace(
        models, rates=[0.08] * len(models), dataset=sharegpt(), horizon=120.0, seed=7
    )
    print(f"Serving {len(models)} models / {len(trace)} requests on {server.gpu_count} GPUs...")

    # 3. Serve and report.
    result = server.serve(trace)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ("requests finished", f"{result.finished_requests}/{len(trace)}"),
                ("SLO attainment", f"{result.slo_attainment():.1%}"),
                ("mean TTFT", f"{result.summary()['mean_ttft']:.2f} s"),
                ("models per GPU", f"{len(models) / server.gpu_count:.1f}"),
            ],
            title="Quickstart results",
        )
    )
    latencies = result.scaling_latencies()
    print(
        f"\nauto-scalings: {len(latencies)}, median "
        f"{np.median(latencies):.2f} s, near-instant (prefetch) "
        f"{np.mean(latencies < 0.25):.0%}"
    )

    # 4. The observability layer: per-stage switch breakdown + timeline.
    print()
    print(format_switch_breakdown(result.obs.tracer))
    write_chrome_trace(result.obs.tracer, TRACE_PATH)
    print(f"\ntimeline written to {TRACE_PATH} (open in chrome://tracing)")


if __name__ == "__main__":
    main()
