"""Quickstart: serve many models on a small GPU pool with Aegaeon.

Builds a serving system on a 4-GPU cluster through the unified
``build_system()`` factory, pools it between twelve 6-14B models, replays
a synthetic market workload with full observability on, and prints
per-token SLO attainment, auto-scaling statistics, and the per-stage
model-switch breakdown rebuilt from the trace.  It also writes a Chrome
``trace_event`` timeline you can open at chrome://tracing or
https://ui.perfetto.dev.

By default this runs Aegaeon under its default policy bundle.  Set
``REPRO_POLICIES`` to any registered bundle name to steer the run —
the bundle picks both the policies *and* the serving topology they
drive (``repro.policy.get_bundle(name).system``), e.g.::

    REPRO_POLICIES=aegaeon-slo-admission python examples/quickstart.py
    REPRO_POLICIES=muxserve-cost-placement python examples/quickstart.py

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (
    AegaeonConfig,
    MuxServeConfig,
    RunSettings,
    ServerlessLLMConfig,
    SystemSpec,
    UnifiedConfig,
    build_system,
)
from repro.engine import EngineConfig
from repro.models import market_mix
from repro.obs import ObsConfig, format_switch_breakdown, write_chrome_trace
from repro.policy import get_bundle
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace

TRACE_PATH = "quickstart_trace.json"


def quad_config(system: str, obs: ObsConfig):
    """The smallest sensible 4-GPU deployment of each topology."""
    if system == "aegaeon":
        # One prefill instance, three decoding instances, all §5
        # optimizations on.
        return AegaeonConfig(
            prefill_instances=1,
            decode_instances=3,
            engine=EngineConfig(),
            cluster="h800-quad",
            obs=obs,
        )
    if system in ("serverless-llm", "serverless-llm+"):
        return ServerlessLLMConfig(cluster="h800-quad", obs=obs)
    if system == "muxserve":
        return MuxServeConfig(cluster="h800-quad", obs=obs)
    if system.startswith("unified-"):
        return UnifiedConfig(
            policy=system.removeprefix("unified-").replace("-", "_"),
            cluster="h800-quad",
            obs=obs,
        )
    raise ValueError(f"no quickstart config for system {system!r}")


def main() -> None:
    # 1. Pick the policy bundle (REPRO_POLICIES, default: aegaeon) and
    #    build the topology it steers on a simulated 4-GPU node.
    settings = RunSettings.from_env()
    bundle = get_bundle(settings.policies or "aegaeon")
    env = Environment()
    server = build_system(
        SystemSpec(
            system=bundle.system,
            config=quad_config(bundle.system, ObsConfig.full()),
            policies=bundle.name,
        ),
        env,
    )

    # 2. A workload: twelve models, sporadic arrivals, ShareGPT lengths.
    models = market_mix(12)
    trace = materialize_trace(
        models, rates=[0.08] * len(models), dataset=sharegpt(), horizon=120.0, seed=7
    )
    print(
        f"Serving {len(models)} models / {len(trace)} requests on "
        f"{server.gpu_count} GPUs [{server.label}, policies={bundle.name}]..."
    )

    # 3. Serve and report.
    result = server.serve(trace)
    registry = server.registry
    assert registry.finished + registry.failed + registry.rejected == registry.submitted
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ("requests finished", f"{result.finished_requests}/{len(trace)}"),
                ("requests rejected", f"{registry.rejected}"),
                ("SLO attainment", f"{result.slo_attainment():.1%}"),
                ("mean TTFT", f"{result.summary()['mean_ttft']:.2f} s"),
                ("models per GPU", f"{len(models) / server.gpu_count:.1f}"),
            ],
            title=f"Quickstart results ({bundle.name})",
        )
    )
    latencies = result.scaling_latencies()
    if len(latencies):
        print(
            f"\nauto-scalings: {len(latencies)}, median "
            f"{np.median(latencies):.2f} s, near-instant (prefetch) "
            f"{np.mean(latencies < 0.25):.0%}"
        )
    else:
        # Static bundles (muxserve) never scale: that is their point.
        print("\nauto-scalings: none (static placement)")

    # 4. The observability layer: per-stage switch breakdown + timeline.
    print()
    print(format_switch_breakdown(result.obs.tracer))
    write_chrome_trace(result.obs.tracer, TRACE_PATH)
    print(f"\ntimeline written to {TRACE_PATH} (open in chrome://tracing)")


if __name__ == "__main__":
    main()
