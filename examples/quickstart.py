"""Quickstart: serve many models on a small GPU pool with Aegaeon.

Builds a 4-GPU cluster, pools it between twelve 6-14B models with
token-level auto-scaling, replays a synthetic market workload, and
prints per-token SLO attainment plus auto-scaling statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import AegaeonConfig, AegaeonServer
from repro.engine import EngineConfig
from repro.hardware import Cluster, H800
from repro.models import market_mix
from repro.sim import Environment
from repro.workload import sharegpt, synthesize_trace


def main() -> None:
    # 1. A simulated cluster: one node with four H800 GPUs.
    env = Environment()
    cluster = Cluster.homogeneous(env, H800, node_count=1, gpus_per_node=4)

    # 2. Aegaeon on top: one prefill instance, three decoding instances.
    server = AegaeonServer(
        env,
        cluster,
        AegaeonConfig(
            prefill_instances=1,
            decode_instances=3,
            engine=EngineConfig(),  # all §5 optimizations on
        ),
    )

    # 3. A workload: twelve models, sporadic arrivals, ShareGPT lengths.
    models = market_mix(12)
    trace = synthesize_trace(
        models, rates=[0.08] * len(models), dataset=sharegpt(), horizon=120.0, seed=7
    )
    print(f"Serving {len(models)} models / {len(trace)} requests on {len(cluster)} GPUs...")

    # 4. Serve and report.
    result = server.serve(trace)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ("requests finished", f"{result.finished_requests}/{len(trace)}"),
                ("SLO attainment", f"{result.slo_attainment():.1%}"),
                ("mean TTFT", f"{result.summary()['mean_ttft']:.2f} s"),
                ("models per GPU", f"{len(models) / len(cluster):.1f}"),
            ],
            title="Quickstart results",
        )
    )
    latencies = result.scaling_latencies()
    print(
        f"\nauto-scalings: {len(latencies)}, median "
        f"{np.median(latencies):.2f} s, near-instant (prefetch) "
        f"{np.mean(latencies < 0.25):.0%}"
    )


if __name__ == "__main__":
    main()
