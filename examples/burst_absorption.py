"""Burst absorption: pooling hot-model overflow with cold models.

Figure 1(b)'s second motivation: even "hot" models see short-term bursts
that overflow their reserved capacity.  This example serves one hot
model alongside a tail of cold models on a shared Aegaeon pool and
shows the burst being absorbed by capacity the cold models are not
using — without hurting the cold models' SLOs.

Run:  python examples/burst_absorption.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import AegaeonConfig, AegaeonServer
from repro.hardware import Cluster, H800
from repro.models import market_mix
from repro.sim import Environment
from repro.workload import (
    BurstConfig,
    Trace,
    TraceRequest,
    bursty_arrivals,
    poisson_arrivals,
    sharegpt,
)

HORIZON = 180.0
HOT_BASE_RATE = 1.2
COLD_RATE = 0.05
COLD_MODELS = 7


def build_trace() -> Trace:
    rng = np.random.default_rng(23)
    models = market_mix(1 + COLD_MODELS)
    hot, cold = models[0], models[1:]
    dataset = sharegpt()

    requests = []
    hot_arrivals = bursty_arrivals(
        HOT_BASE_RATE,
        HORIZON,
        rng,
        burst=BurstConfig(episode_rate=1 / 60.0, episode_duration=25.0, multiplier=2.0),
    )
    for arrival in hot_arrivals:
        sample = dataset.sample_one(rng)
        requests.append((hot.name, float(arrival), sample))
    for spec in cold:
        for arrival in poisson_arrivals(COLD_RATE, HORIZON, rng):
            sample = dataset.sample_one(rng)
            requests.append((spec.name, float(arrival), sample))
    requests.sort(key=lambda item: item[1])
    trace_requests = tuple(
        TraceRequest(
            request_id=index,
            model=model,
            arrival=arrival,
            input_tokens=sample.input_tokens,
            output_tokens=sample.output_tokens,
        )
        for index, (model, arrival, sample) in enumerate(requests)
    )
    return Trace(requests=trace_requests, models=tuple(models), horizon=HORIZON)


def main() -> None:
    trace = build_trace()
    hot_name = trace.models[0].name
    hot_count = sum(1 for r in trace.requests if r.model == hot_name)
    print(
        f"1 hot model ({hot_count} reqs, bursty) + {COLD_MODELS} cold models "
        f"({len(trace) - hot_count} reqs) on a 5-GPU Aegaeon pool"
    )

    env = Environment()
    cluster = Cluster.homogeneous(env, H800, 1, 5)
    server = AegaeonServer(
        env, cluster, AegaeonConfig(prefill_instances=2, decode_instances=3)
    )
    result = server.serve(trace)

    # Split attainment by model class.
    per_request = result.per_request_attainment()
    hot_mask = np.array([r.model == hot_name for r in result.requests])
    expected = np.array([r.output_tokens for r in result.requests], dtype=float)

    def group_attainment(mask):
        met = per_request[mask] * expected[mask]
        return met.sum() / expected[mask].sum()

    rows = [
        ("hot model (with bursts)", f"{group_attainment(hot_mask):.1%}"),
        ("cold tail models", f"{group_attainment(~hot_mask):.1%}"),
        ("overall", f"{result.slo_attainment():.1%}"),
    ]
    print()
    print(format_table(["traffic class", "SLO attainment"], rows, title="Burst absorption"))
    print(
        "\nThe burst overflow rides on capacity the cold models leave idle;"
        "\nno dedicated burst reservation is provisioned."
    )


if __name__ == "__main__":
    main()
