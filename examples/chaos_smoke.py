"""Chaos smoke run: seeded faults, runtime invariants, replay check.

For each fault seed, replays the acceptance workload (4-model market
mix on a 4-GPU Aegaeon pool) under a seeded :class:`FaultPlan` with the
runtime :class:`InvariantChecker` attached, twice, and verifies that

* every invariant check passed (``serve`` raises otherwise),
* every submitted request landed in exactly one terminal ledger
  (finished, failed, or rejected), and
* the two same-seed runs are byte-identical — faults are ordinary
  simulation events, so chaos does not cost reproducibility.

Run:  python examples/chaos_smoke.py [seed ...]     (default: 101 202 303)
Exits non-zero on any violation; CI runs this as the chaos-smoke job.
"""

import sys

from repro.chaos import FaultPlan
from repro.core import AegaeonConfig, SystemSpec, build_system
from repro.models import market_mix
from repro.sim import Environment
from repro.workload import sharegpt, materialize_trace

DEFAULT_SEEDS = (101, 202, 303)


def run_once(fault_seed: int):
    """One faulted serve; returns (ledger counts, replay fingerprint)."""
    env = Environment()
    plan = FaultPlan.seeded(
        fault_seed, horizon=40.0, count=4, instances=("decode1", "decode2")
    )
    system = build_system(
        SystemSpec(
            config=AegaeonConfig(
                prefill_instances=1, decode_instances=3, cluster="h800-quad"
            ),
            faults=plan,
            invariants=True,
        ),
        env,
    )
    trace = materialize_trace(
        market_mix(4), [0.15] * 4, sharegpt(), horizon=40.0, seed=7
    )
    # warm=False so checkpoint fetches hit the disruptable remote path.
    result = system.serve(trace, warm=False)
    registry = system.registry
    assert (
        registry.finished + registry.failed + registry.rejected
        == registry.submitted
    ), "request ledger does not balance"
    counts = {
        "submitted": registry.submitted,
        "finished": registry.finished,
        "failed": registry.failed,
        "rejected": registry.rejected,
        "faults": len(system.fault_injector.delivered),
        "checks": system.invariant_checker.checks_run,
    }
    fingerprint = [
        (r.request_id, r.finish_time, tuple(r.token_times))
        for r in result.requests
    ]
    return counts, fingerprint


def main() -> None:
    seeds = [int(arg) for arg in sys.argv[1:]] or list(DEFAULT_SEEDS)
    for seed in seeds:
        counts, first = run_once(seed)
        _, second = run_once(seed)
        assert first == second, f"fault seed {seed} not reproducible"
        plan = FaultPlan.seeded(
            seed, horizon=40.0, count=4, instances=("decode1", "decode2")
        )
        kinds = ", ".join(
            f"{kind} x{n}" for kind, n in sorted(plan.kind_counts().items())
        )
        print(
            f"fault seed {seed}: {kinds} | "
            f"{counts['finished']}/{counts['submitted']} finished, "
            f"{counts['failed']} failed, {counts['rejected']} rejected | "
            f"{counts['faults']} faults delivered, "
            f"{counts['checks']} invariant checks clean, replay identical"
        )


if __name__ == "__main__":
    main()
