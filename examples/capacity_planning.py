"""Capacity planning with the built-in pool planner.

Given a workload (models + rates + SLO), `repro.analysis.plan_pool`
sweeps candidate prefill/decode splits and returns the smallest pool
meeting the attainment target — the programmatic form of the paper's
§7.5 provisioning question.  This example plans pools for three traffic
levels and prints the resulting GPU counts and savings.

Run:  python examples/capacity_planning.py
"""

from repro.analysis import format_table, plan_pool
from repro.core import DEFAULT_SLO
from repro.hardware import H800
from repro.models import market_mix
from repro.workload import sharegpt, materialize_trace

MODEL_COUNT = 16
HORIZON = 120.0


def main() -> None:
    rows = []
    for label, rate in [("light", 0.02), ("moderate", 0.08), ("heavy", 0.25)]:
        models = market_mix(MODEL_COUNT)
        trace = materialize_trace(
            models, [rate] * MODEL_COUNT, sharegpt(), HORIZON, seed=31
        )
        plan = plan_pool(trace, H800, slo=DEFAULT_SLO, threshold=0.90)
        if plan is None:
            rows.append((label, f"{rate} req/s", "-", "not satisfiable", "-"))
            continue
        rows.append(
            (
                label,
                f"{rate} req/s/model",
                str(plan),
                f"{plan.attainment:.1%}",
                f"{plan.saving_versus_dedicated(MODEL_COUNT):.0%}",
            )
        )
    print(
        format_table(
            ["traffic", "per-model rate", "planned pool", "SLO", "saving vs dedicated"],
            rows,
            title=f"Pool plans for {MODEL_COUNT} models (TTFT 10s / TBT 100ms)",
        )
    )
    print(
        "\nHeavier traffic needs more instances; the saving shrinks as the"
        "\npool approaches one GPU per active model (Theorem 3.1's bound)."
    )


if __name__ == "__main__":
    main()
