"""Market-scale GPU pooling: how many GPUs does a model market need?

The paper's motivating scenario (§1, §7.5): a marketplace serves many
models with sporadic, skewed traffic.  This example compares three
provisioning strategies on the same deployment-shaped workload —

* dedicated GPUs (one per model, the status quo the paper starts from),
* request-level auto-scaling (ServerlessLLM),
* Aegaeon's token-level pooling —

and reports GPUs needed for >=90% per-token SLO attainment, reproducing
the §7.5 "82% fewer GPUs" effect at laptop scale.

Run:  python examples/market_pooling.py
"""

import numpy as np

from repro.analysis import expected_active_models, format_table
from repro.baselines import DedicatedServing, ServerlessLLM
from repro.core import AegaeonConfig, AegaeonServer
from repro.hardware import Cluster, H800
from repro.models import market_mix
from repro.sim import Environment
from repro.workload import deployment_rates, sharegpt, materialize_trace

MODEL_COUNT = 24
HORIZON = 150.0


def build_trace():
    rng = np.random.default_rng(11)
    models = market_mix(MODEL_COUNT)
    rates = deployment_rates(MODEL_COUNT, rng)
    return materialize_trace(models, list(rates), sharegpt(), HORIZON, seed=11)


def size_aegaeon(trace):
    """Smallest (prefill, decode) split meeting 90% attainment."""
    for prefill, decode in [(1, 2), (1, 3), (2, 3), (2, 4), (2, 6)]:
        env = Environment()
        cluster = Cluster.homogeneous(env, H800, 1, prefill + decode)
        server = AegaeonServer(
            env, cluster, AegaeonConfig(prefill_instances=prefill, decode_instances=decode)
        )
        result = server.serve(trace)
        if result.slo_attainment() >= 0.90:
            return prefill + decode, result
    return None, None


def size_serverless(trace):
    """Smallest instance count meeting 90% attainment."""
    for count in [4, 6, 8, 10, 12, 16, 20, MODEL_COUNT]:
        env = Environment()
        cluster = Cluster.homogeneous(env, H800, 1, count)
        result = ServerlessLLM(env, cluster).serve(trace)
        if result.slo_attainment() >= 0.90:
            return count, result
    return MODEL_COUNT, None


def main() -> None:
    trace = build_trace()
    total_rate = trace.total_rate
    print(
        f"{MODEL_COUNT} models, {len(trace)} requests over {HORIZON:.0f}s "
        f"({total_rate:.2f} req/s aggregate)"
    )
    mean_rate = total_rate / MODEL_COUNT
    print(
        f"expected active models (Theorem 3.1, T~8s): "
        f"{expected_active_models(MODEL_COUNT, mean_rate, 8.0):.1f}"
    )
    print()

    env = Environment()
    dedicated = DedicatedServing(env, H800)
    result_dedicated = dedicated.serve(trace)

    sllm_gpus, _ = size_serverless(trace)
    aegaeon_gpus, aegaeon_result = size_aegaeon(trace)

    rows = [
        (
            "Dedicated (1 GPU/model)",
            MODEL_COUNT,
            f"{result_dedicated.slo_attainment():.1%}",
            "0%",
        ),
        (
            "ServerlessLLM (request-level)",
            sllm_gpus,
            ">=90%",
            f"{1 - sllm_gpus / MODEL_COUNT:.0%}",
        ),
        (
            "Aegaeon (token-level)",
            aegaeon_gpus,
            f"{aegaeon_result.slo_attainment():.1%}",
            f"{1 - aegaeon_gpus / MODEL_COUNT:.0%}",
        ),
    ]
    print(
        format_table(
            ["strategy", "GPUs", "SLO attainment", "GPU saving"],
            rows,
            title="GPUs required for the same market workload",
        )
    )
    print(
        f"\nAegaeon pools {MODEL_COUNT / aegaeon_gpus:.1f} models per GPU "
        f"(paper deployment: 82% saving, up to 7 models per GPU)"
    )


if __name__ == "__main__":
    main()
