"""Fleet-scale market replay: 10^5 requests, 8 shards, 128 GPUs, one process.

The paper's market (Figure 1a) at fleet scale: the model catalog is
consistent-hashed across 8 Aegaeon shards — each a full testbed pool of
16 H800s — and a single streaming pump replays a ~10^5-request market
trace against all of them on one simulation clock.  Requests are
generated lazily (bounded lookahead) and dropped at disposal after
folding into per-shard streaming stats, so peak memory tracks in-flight
concurrency, not trace length; the run ends with fleet-rolled p50/p99
TTFT/TBT, per-token SLO attainment, and the market-rate $/token.

``--controller {off,static,forecast}`` arms the live fleet controller
(``repro.fleet.controller``): per-model EWMA arrival forecasts drive
mid-run catalog migrations, admission rejections spill to less-loaded
shards, and the rollup gains ``spilled``/``migrations`` columns.
``--compare`` runs the load-skewed acceptance experiment — the whole
catalog pinned to shard 0 — under the observe-only ``static`` policy and
again under ``forecast``, and reports the SLO-attainment delta.

The printed digest is a hash over every shard's full stats: two runs
with the same seed and controller print the same digest
(byte-reproducibility at fleet scale, controller included).

Run:  python examples/fleet_market_replay.py            (~2-4 min)
      python examples/fleet_market_replay.py --quick    (CI-sized)
      python examples/fleet_market_replay.py --quick --controller forecast
      python examples/fleet_market_replay.py --compare  (skewed A/B)
"""

import argparse
import hashlib
import json
import resource
import sys
import time

from repro.core import AegaeonConfig, SystemSpec
from repro.fleet import ControllerConfig, FleetConfig, build_fleet
from repro.workload import market_stream


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--models", type=int, default=640)
    parser.add_argument("--total-rate", type=float, default=24.0)
    parser.add_argument("--horizon", type=float, default=4200.0)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--controller", choices=("off", "static", "forecast"), default="off",
        help="arm the live fleet controller with this policy",
    )
    parser.add_argument(
        "--skewed", action="store_true",
        help="pin the whole catalog to shard 0 (worst-case hot spot) "
        "instead of load-aware pre-replay pins",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="run the skewed acceptance experiment: static vs forecast "
        "controller on one overloaded shard pool",
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="write the fleet rollup (plus controller summary) as JSON",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink to a ~1e3-request run (smoke/CI)",
    )
    args = parser.parse_args()
    if args.quick:
        args.shards, args.models, args.horizon = 2, 64, 180.0
        args.total_rate = 6.0
    return args


def digest(result):
    """Order-stable hash over every shard's complete stats."""
    payload = json.dumps(
        [stats.as_dict() for stats in result.shard_stats], sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def build_and_run(args, *, policy, spec, skewed):
    """One replay; returns the FleetResult (stream is rebuilt per run)."""
    stream = market_stream(
        args.models, args.horizon, seed=args.seed, total_rate=args.total_rate
    )
    controller = None if policy == "off" else ControllerConfig(policy=policy)
    fleet = build_fleet(
        FleetConfig(shards=args.shards, spec=spec, controller=controller)
    )
    if skewed:
        # Worst-case hot spot: every model (and so all load) lands on
        # shard 0; only the controller can move it anywhere else.
        for model in stream.models:
            fleet.partitioner.pin(model.name, 0)
    else:
        # The zipf head would otherwise concentrate on whichever shards
        # the ring hashes the hot models to; the rebalance hook pins
        # them apart before the replay starts.
        fleet.partitioner.rebalance(
            {model.name: rate for model, rate in zip(stream.models, stream.rates)}
        )
    result = fleet.run(stream)
    check_identities(fleet, result)
    return fleet, result


def check_identities(fleet, result):
    """The identities every run must close: nothing lost, nothing retained."""
    total = result.rollup.total
    # Every fold is exactly one disposition, shard by shard.
    for stats in result.shard_stats:
        assert (
            stats.finished + stats.failed + stats.rejected + stats.spilled
            == stats.requests
        )
    in_flight = sum(shard.system.registry.in_flight for shard in fleet.shards)
    if in_flight == 0:
        # Fully drained: folds == pump submissions + spill re-submissions,
        # and the streaming proxies hold nothing back.
        assert total.requests == result.submitted + total.spilled
        assert all(not shard.system.proxy.live for shard in fleet.shards)
    else:
        # Deadline-capped overload runs may strand in-flight work; it
        # must be exactly the gap between submissions and folds.
        assert total.requests + in_flight == result.submitted + total.spilled
    assert all(not shard.system.finished for shard in fleet.shards)


def print_summary(result, wall):
    summary = result.summary()
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    print(f"\nreplayed {summary['requests']:,} requests in {wall:.1f}s wall")
    print(
        f"  finished {summary['finished']:,}  failed {summary['failed']:,}  "
        f"rejected {summary['rejected']:,}  spilled {summary['spilled']:,}  "
        f"migrations {summary['migrations']:,}"
    )
    print(f"  SLO attainment  {summary['slo_attainment']:.4f}")
    print(
        f"  TTFT p50/p99    {summary['ttft_p50'] * 1e3:.1f} / "
        f"{summary['ttft_p99'] * 1e3:.1f} ms"
    )
    print(
        f"  TBT  p50/p99    {summary['tbt_p50'] * 1e3:.2f} / "
        f"{summary['tbt_p99'] * 1e3:.2f} ms"
    )
    print(
        f"  cost            ${summary['cost_usd']:.2f} "
        f"({summary['gpu_hours']:.1f} GPU-hours, "
        f"${1e6 * summary['cost_per_token']:.2f}/Mtok)"
    )
    if result.controller is not None:
        ctrl = result.controller
        print(
            f"  controller      {ctrl['policy']}: {ctrl['ticks']} ticks, "
            f"{ctrl['migrations']} migrations, {ctrl['spills']} spills"
        )
    print(f"  peak RSS        {peak_rss_mb:.0f} MB")
    print(f"  digest          {digest(result)}")
    return summary


def write_rollup(path, result):
    payload = {
        "summary": result.summary(),
        "shards": [stats.as_dict() for stats in result.shard_stats],
        "controller": result.controller,
        "digest": digest(result),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    print(f"  rollup json     {path}")


def run_compare(args):
    """The acceptance experiment: on a load-skewed trace, the forecast
    controller must beat the observe-only static policy on per-token SLO
    attainment — migrations and spillover visible in the rollup."""
    # An overloaded small pool, so the skew actually hurts: 1+3 H800s
    # per shard, SLO-aware admission shedding when pressure builds.
    args.shards = 2
    args.models = 16
    args.total_rate = 40.0
    args.horizon = 180.0 if args.quick else 600.0
    spec = SystemSpec(
        config=AegaeonConfig(
            prefill_instances=1, decode_instances=3, cluster="h800-quad"
        ),
        policies="aegaeon-slo-admission",
    )
    print(
        f"compare: {args.shards} shards x 4 GPUs, {args.models} models "
        f"pinned to shard 0, {args.total_rate:.0f} req/s over "
        f"{args.horizon:.0f}s (seed {args.seed})"
    )
    attainment = {}
    for policy in ("static", "forecast"):
        print(f"\n--- controller={policy} ---")
        start = time.perf_counter()
        fleet, result = build_and_run(args, policy=policy, spec=spec, skewed=True)
        summary = print_summary(result, time.perf_counter() - start)
        attainment[policy] = summary["slo_attainment"]
        if args.out:
            write_rollup(f"{args.out}.{policy}.json", result)
    delta = attainment["forecast"] - attainment["static"]
    print(
        f"\nper-token SLO attainment: static {attainment['static']:.4f} "
        f"-> forecast {attainment['forecast']:.4f} ({delta:+.4f})"
    )
    if delta <= 0:
        print("error: forecast controller did not improve on static")
        return 1
    return 0


def main():
    args = parse_args()
    if args.compare:
        return run_compare(args)

    stream = market_stream(
        args.models, args.horizon, seed=args.seed, total_rate=args.total_rate
    )
    expected = stream.expected_requests
    spec = SystemSpec(cluster="testbed")
    start = time.perf_counter()
    fleet, result = build_and_run(
        args, policy=args.controller, spec=spec, skewed=args.skewed
    )
    wall = time.perf_counter() - start
    print(
        f"fleet: {args.shards} shards x {fleet.shards[0].system.gpu_count} "
        f"GPUs = {fleet.gpu_count} GPUs; catalog {args.models} models "
        f"(controller={args.controller}, "
        f"{'skewed' if args.skewed else 'load-aware pins'})"
    )
    print(
        f"workload: ~{expected:,.0f} requests over {args.horizon:,.0f}s "
        f"(streamed, nothing materialized)"
    )
    summary = print_summary(result, wall)
    if args.out:
        write_rollup(args.out, result)
    if not args.quick and summary["requests"] < 100_000:
        print("warning: full-scale run produced fewer than 1e5 requests")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
