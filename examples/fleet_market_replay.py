"""Fleet-scale market replay: 10^5 requests, 8 shards, 128 GPUs, one process.

The paper's market (Figure 1a) at fleet scale: the model catalog is
consistent-hashed across 8 Aegaeon shards — each a full testbed pool of
16 H800s — and a single streaming pump replays a ~10^5-request market
trace against all of them on one simulation clock.  Requests are
generated lazily (bounded lookahead) and dropped at disposal after
folding into per-shard streaming stats, so peak memory tracks in-flight
concurrency, not trace length; the run ends with fleet-rolled p50/p99
TTFT/TBT, per-token SLO attainment, and the market-rate $/token.

The printed digest is a hash over every shard's full stats: two runs
with the same seed print the same digest (byte-reproducibility at fleet
scale).

Run:  python examples/fleet_market_replay.py          (~2-4 min)
      python examples/fleet_market_replay.py --quick  (CI-sized)
"""

import argparse
import hashlib
import json
import resource
import sys
import time

from repro.core import SystemSpec
from repro.fleet import FleetConfig, build_fleet
from repro.workload import market_stream


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--models", type=int, default=640)
    parser.add_argument("--total-rate", type=float, default=24.0)
    parser.add_argument("--horizon", type=float, default=4200.0)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink to a ~1e3-request run (smoke/CI)",
    )
    args = parser.parse_args()
    if args.quick:
        args.shards, args.models, args.horizon = 2, 64, 180.0
        args.total_rate = 6.0
    return args


def digest(result):
    """Order-stable hash over every shard's complete stats."""
    payload = json.dumps(
        [stats.as_dict() for stats in result.shard_stats], sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def main():
    args = parse_args()
    stream = market_stream(
        args.models, args.horizon, seed=args.seed, total_rate=args.total_rate
    )
    fleet = build_fleet(
        FleetConfig(shards=args.shards, spec=SystemSpec(cluster="testbed"))
    )
    # The zipf head would otherwise concentrate on whichever shards the
    # ring hashes the hot models to; the rebalance hook pins them apart.
    moves = fleet.partitioner.rebalance(
        {model.name: rate for model, rate in zip(stream.models, stream.rates)}
    )
    expected = stream.expected_requests
    print(
        f"fleet: {args.shards} shards x {fleet.shards[0].system.gpu_count} "
        f"GPUs = {fleet.gpu_count} GPUs; catalog {args.models} models "
        f"({len(moves)} rebalance pins)"
    )
    print(
        f"workload: ~{expected:,.0f} requests over {args.horizon:,.0f}s "
        f"(streamed, nothing materialized)"
    )

    start = time.perf_counter()
    result = fleet.run(stream)
    wall = time.perf_counter() - start

    summary = result.summary()
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    print(f"\nreplayed {summary['requests']:,} requests in {wall:.1f}s wall")
    print(
        f"  finished {summary['finished']:,}  failed {summary['failed']:,}  "
        f"rejected {summary['rejected']:,}"
    )
    print(f"  SLO attainment  {summary['slo_attainment']:.4f}")
    print(
        f"  TTFT p50/p99    {summary['ttft_p50'] * 1e3:.1f} / "
        f"{summary['ttft_p99'] * 1e3:.1f} ms"
    )
    print(
        f"  TBT  p50/p99    {summary['tbt_p50'] * 1e3:.2f} / "
        f"{summary['tbt_p99'] * 1e3:.2f} ms"
    )
    print(
        f"  cost            ${summary['cost_usd']:.2f} "
        f"({summary['gpu_hours']:.1f} GPU-hours, "
        f"${1e6 * summary['cost_per_token']:.2f}/Mtok)"
    )
    print(f"  peak RSS        {peak_rss_mb:.0f} MB")
    print(f"  digest          {digest(result)}")

    # The identity every run must close: nothing lost, nothing retained.
    total = result.rollup.total
    assert total.requests == result.submitted
    assert total.finished + total.failed + total.rejected <= total.requests
    assert all(not shard.system.proxy.live for shard in fleet.shards)
    assert all(not shard.system.finished for shard in fleet.shards)
    if not args.quick and summary["requests"] < 100_000:
        print("warning: full-scale run produced fewer than 1e5 requests")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
